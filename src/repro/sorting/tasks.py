"""Cooperative multi-tasking of sorting subtasks within one simulated process.

A *janus process* of Janus Quicksort works on two subtasks at the same time:
"Janus processes perform all local operations on both groups simultaneously
before they communicate again.  All communication operations are then executed
in nonblocking mode, again on both groups simultaneously" (Section VII).

We realise this with a tiny per-process task scheduler.  Each subtask is an
ordinary Python generator (a *task coroutine*) that yields one of three
directives:

``Pending(requests)``
    Wait — without blocking the process — until every request in the list has
    completed.  Other task coroutines of the same process keep running.

``Blocking(generator)``
    Run an environment-level generator to completion, blocking the *whole*
    process (used for local computation and, in the native-MPI backend, for
    blocking communicator creation — which is exactly what makes that backend
    slow).  The generator's return value is sent back into the coroutine.

``Spawn(coroutine)``
    Add a new task coroutine (the janus's second subtask).  The spawning
    coroutine keeps running first, so the order in which a janus enters the
    two subtasks (and thus the communicator-creation *schedule*) is decided by
    which subtask the parent coroutine continues as.

The scheduler itself is an environment-level generator: when every coroutine
is waiting on ``Pending`` requests, it suspends the process until one of them
can make progress.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Iterable, List, Optional, Sequence

from ..messaging import RequestSet
from ..simulator.process import RankEnv

__all__ = ["Pending", "Blocking", "Spawn", "run_task_scheduler"]


@dataclass
class Pending:
    """Wait (cooperatively) until all ``requests`` have completed.

    Completion is tracked incrementally (via :class:`~repro.messaging.RequestSet`):
    every :meth:`ready` poll re-tests only the requests that were still
    incomplete last time, so a window of N requests costs O(N) tests over its
    lifetime instead of O(N²).
    """

    requests: Sequence[Any]
    _tracker: Optional[RequestSet] = field(default=None, repr=False, compare=False)

    def ready(self) -> bool:
        tracker = self._tracker
        if tracker is None:
            tracker = self._tracker = RequestSet(self.requests)
        return tracker.test()


@dataclass
class Blocking:
    """Run an env-level generator, blocking the whole process."""

    generator: Generator


@dataclass
class Spawn:
    """Register an additional task coroutine with the scheduler."""

    coroutine: Generator


@dataclass
class _Entry:
    coroutine: Generator
    waiting: Optional[Pending] = None
    send_value: Any = None
    done: bool = False
    result: Any = None


def run_task_scheduler(env: RankEnv, coroutines: Iterable[Generator]):
    """Drive a set of task coroutines to completion (env-level generator).

    Returns the list of coroutine return values in completion-registration
    order (initial coroutines first, spawned ones appended as they appear).
    """
    entries: List[_Entry] = [_Entry(coroutine=c) for c in coroutines]

    def sweep():
        """Advance every runnable coroutine as far as possible.

        Entries whose ``Pending`` window is still open are skipped — the wake
        predicate (``any_entry_ready``) is the single place that polls and
        consumes readiness, so each wake-up tests every waiting window exactly
        once instead of twice.

        This is a generator because a ``Blocking`` directive must suspend the
        whole process; it is driven with ``yield from`` below.
        """
        index = 0
        while index < len(entries):
            entry = entries[index]
            index += 1
            if entry.done or entry.waiting is not None:
                continue
            while True:
                try:
                    directive = entry.coroutine.send(entry.send_value)
                except StopIteration as stop:
                    entry.done = True
                    entry.result = stop.value
                    break
                entry.send_value = None
                if isinstance(directive, Pending):
                    if directive.ready():
                        continue
                    entry.waiting = directive
                    break
                if isinstance(directive, Blocking):
                    entry.send_value = yield from directive.generator
                    continue
                if isinstance(directive, Spawn):
                    entries.append(_Entry(coroutine=directive.coroutine))
                    continue
                raise TypeError(
                    f"task coroutine yielded {directive!r}; expected "
                    "Pending, Blocking or Spawn")

    def any_entry_ready() -> bool:
        """Poll every open window once; release the entries that completed."""
        found = False
        for e in entries:
            if not e.done and e.waiting is not None and e.waiting.ready():
                e.waiting = None
                e.send_value = None
                found = True
        return found

    while True:
        yield from sweep()
        pending_entries = [e for e in entries if not e.done]
        if not pending_entries:
            break
        # Every remaining coroutine waits on requests; suspend the process
        # until at least one of them can continue.  Testing the requests makes
        # progress on their state machines, mirroring progression-by-Test.
        yield from env.wait_until(any_entry_ready)

    return [entry.result for entry in entries]
