"""Cooperative multi-tasking of sorting subtasks within one simulated process.

A *janus process* of Janus Quicksort works on two subtasks at the same time:
"Janus processes perform all local operations on both groups simultaneously
before they communicate again.  All communication operations are then executed
in nonblocking mode, again on both groups simultaneously" (Section VII).

We realise this with a tiny per-process task scheduler.  Each subtask is an
ordinary Python generator (a *task coroutine*) that yields one of three
directives:

``Pending(requests)``
    Wait — without blocking the process — until every request in the list has
    completed.  Other task coroutines of the same process keep running.
    A *bare request* (any object with a ``test()`` method) may be yielded
    directly as shorthand for a single-request window — the hot case, spared
    the ``Pending`` wrapper allocation.

``Blocking(generator)``
    Run an environment-level generator to completion, blocking the *whole*
    process (used for local computation and, in the native-MPI backend, for
    blocking communicator creation — which is exactly what makes that backend
    slow).  The generator's return value is sent back into the coroutine.

``Spawn(coroutine)``
    Add a new task coroutine (the janus's second subtask).  The spawning
    coroutine keeps running first, so the order in which a janus enters the
    two subtasks (and thus the communicator-creation *schedule*) is decided by
    which subtask the parent coroutine continues as.

The scheduler itself is an environment-level generator: when every coroutine
is waiting on ``Pending`` requests, it suspends the process until one of them
can make progress.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from ..messaging import RequestSet
from ..simulator.engine import WAIT_NOTIFY
from ..simulator.process import RankEnv

__all__ = ["Pending", "Blocking", "Spawn", "run_task_scheduler"]


class Pending:
    """Wait (cooperatively) until all ``requests`` have completed.

    Completion is tracked incrementally (via :class:`~repro.messaging.RequestSet`):
    every :meth:`ready` poll re-tests only the requests that were still
    incomplete last time, so a window of N requests costs O(N) tests over its
    lifetime instead of O(N²).

    (All three directives are plain ``__slots__`` classes: they are allocated
    once or more per task level, and a dataclass with a ``__dict__`` was
    measurable on the scheduling hot path.)
    """

    __slots__ = ("requests", "_tracker")

    def __init__(self, requests):
        self.requests = requests
        # Completion tester: the request itself for the (hot) single-request
        # window, a RequestSet otherwise — both expose ``test()``.
        self._tracker: Optional[Any] = None

    def ready(self) -> bool:
        tracker = self._tracker
        if tracker is None:
            requests = self.requests
            tracker = self._tracker = (
                requests[0] if len(requests) == 1 else RequestSet(requests))
        return tracker.test()

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Pending({self.requests!r})"


class Blocking:
    """Run an env-level generator, blocking the whole process."""

    __slots__ = ("generator",)

    def __init__(self, generator: Generator):
        self.generator = generator


class Spawn:
    """Register an additional task coroutine with the scheduler."""

    __slots__ = ("coroutine",)

    def __init__(self, coroutine: Generator):
        self.coroutine = coroutine


class _Entry:
    __slots__ = ("coroutine", "waiting", "send_value", "done", "result")

    def __init__(self, coroutine: Generator):
        self.coroutine = coroutine
        #: Zero-argument readiness callable of the open window (None if
        #: runnable): ``Pending.ready`` or a bare request's ``test``.
        self.waiting: Optional[Any] = None
        self.send_value: Any = None
        self.done = False
        self.result: Any = None


def run_task_scheduler(env: RankEnv, coroutines: Iterable[Generator]):
    """Drive a set of task coroutines to completion (env-level generator).

    Returns the list of coroutine return values in completion-registration
    order (initial coroutines first, spawned ones appended as they appear).
    """
    entries: List[_Entry] = [_Entry(coroutine=c) for c in coroutines]

    if len(entries) == 1:
        # Single-chain fast path: a run that never spawns a janus subtask
        # (always the case in the batched n == p regime) is one coroutine
        # driven straight — no sweep generator, no window bookkeeping, and
        # one stack frame less per engine resume.  The directive handling
        # and the test()-call sequence are identical to the generic loop
        # below, so request state machines progress exactly the same; on the
        # first Spawn the entry falls through to the generic scheduler in
        # the state the sweep would have left it (runnable, spawning entry
        # resumed first).
        entry = entries[0]
        coroutine = entry.coroutine
        spawned = False
        while not spawned:
            try:
                directive = coroutine.send(entry.send_value)
            except StopIteration as stop:
                entry.done = True
                entry.result = stop.value
                return [stop.value]
            entry.send_value = None
            cls = directive.__class__
            if cls is Pending:
                if directive.ready():
                    continue
                waiting = directive.ready
            elif cls is Blocking:
                entry.send_value = yield from directive.generator
                continue
            elif cls is Spawn:
                entries.append(_Entry(coroutine=directive.coroutine))
                spawned = True
                continue
            else:
                tester = getattr(directive, "test", None)
                if tester is None:
                    raise TypeError(
                        f"task coroutine yielded {directive!r}; expected "
                        "Pending, Blocking, Spawn or a testable request")
                if tester():
                    continue
                waiting = tester
            while not waiting():
                yield WAIT_NOTIFY

    unfinished = len(entries)

    def sweep():
        """Advance every runnable coroutine as far as possible.

        Entries whose ``Pending`` window is still open are skipped — the wake
        predicate (``any_entry_ready``) is the single place that polls and
        consumes readiness, so each wake-up tests every waiting window exactly
        once instead of twice.

        This is a generator because a ``Blocking`` directive must suspend the
        whole process; it is driven with ``yield from`` below.
        """
        nonlocal unfinished
        index = 0
        while index < len(entries):
            entry = entries[index]
            index += 1
            if entry.done or entry.waiting is not None:
                continue
            while True:
                try:
                    directive = entry.coroutine.send(entry.send_value)
                except StopIteration as stop:
                    entry.done = True
                    entry.result = stop.value
                    unfinished -= 1
                    break
                entry.send_value = None
                cls = directive.__class__
                if cls is Pending:
                    if directive.ready():
                        continue
                    entry.waiting = directive.ready
                    break
                if cls is Blocking:
                    entry.send_value = yield from directive.generator
                    continue
                if cls is Spawn:
                    entries.append(_Entry(coroutine=directive.coroutine))
                    unfinished += 1
                    continue
                # Bare single request (the hot case): poll its test() directly.
                tester = getattr(directive, "test", None)
                if tester is None:
                    raise TypeError(
                        f"task coroutine yielded {directive!r}; expected "
                        "Pending, Blocking, Spawn or a testable request")
                if tester():
                    continue
                entry.waiting = tester
                break

    def any_entry_ready() -> bool:
        """Poll every open window once; release the entries that completed."""
        found = False
        for e in entries:
            waiting = e.waiting
            if waiting is not None and not e.done and waiting():
                e.waiting = None
                e.send_value = None
                found = True
        return found

    while True:
        yield from sweep()
        if not unfinished:
            break
        # Every remaining coroutine waits on requests; suspend the process
        # until at least one of them can continue.  Testing the requests makes
        # progress on their state machines, mirroring progression-by-Test.
        # The wait loop is inlined (no env.wait_until generator per cycle):
        # this resume path runs on every wake-up of every rank.
        while not any_entry_ready():
            yield WAIT_NOTIFY

    return [entry.result for entry in entries]
