"""Distributed QuickHull on RBC communicators (the paper's future-work example)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    QuickHullConfig,
    convex_hull_sequential,
    distributed_quickhull,
)
from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster


# ---------------------------------------------------------------------------
# Sequential reference hull.
# ---------------------------------------------------------------------------

def _normalise(hull: np.ndarray) -> np.ndarray:
    """Canonical representation of a hull: unique vertices, lexicographic order."""
    hull = np.asarray(hull, dtype=np.float64).reshape(-1, 2)
    if hull.shape[0] == 0:
        return hull
    return np.unique(hull, axis=0)


def test_sequential_hull_of_square_with_interior_points():
    square = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=np.float64)
    interior = np.array([[0.5, 0.5], [0.25, 0.75], [0.9, 0.1]])
    hull = convex_hull_sequential(np.vstack([square, interior]))
    assert np.array_equal(_normalise(hull), _normalise(square))


def test_sequential_hull_degenerate_inputs():
    assert convex_hull_sequential(np.empty((0, 2))).shape == (0, 2)
    single = convex_hull_sequential(np.array([[2.0, 3.0]]))
    assert np.array_equal(single, np.array([[2.0, 3.0]]))
    collinear = convex_hull_sequential(
        np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]]))
    assert np.array_equal(_normalise(collinear),
                          np.array([[0.0, 0.0], [3.0, 3.0]]))
    duplicated = convex_hull_sequential(np.array([[1.0, 1.0]] * 5))
    assert duplicated.shape == (1, 2)


def test_sequential_hull_is_counter_clockwise():
    rng = np.random.default_rng(0)
    points = rng.uniform(-1, 1, size=(200, 2))
    hull = convex_hull_sequential(points)
    # Shoelace area of a CCW polygon is positive.
    x, y = hull[:, 0], hull[:, 1]
    area = 0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
    assert area > 0


def test_sequential_hull_rejects_bad_shapes():
    with pytest.raises(ValueError):
        convex_hull_sequential(np.zeros((3, 3)))


# ---------------------------------------------------------------------------
# Distributed QuickHull.
# ---------------------------------------------------------------------------

def _run_distributed(parts, config=None):
    p = len(parts)

    def program(env, local_points):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        hull, stats = yield from distributed_quickhull(env, world, local_points,
                                                       config)
        return hull, stats

    result = Cluster(p).run(
        program, rank_kwargs=[dict(local_points=parts[r]) for r in range(p)])
    hulls = [r[0] for r in result.results]
    stats = [r[1] for r in result.results]
    return hulls, stats


def _random_parts(p, per_rank, seed=0, kind="uniform"):
    rng = np.random.default_rng(seed)
    parts = []
    for _ in range(p):
        if kind == "uniform":
            pts = rng.uniform(-10, 10, size=(per_rank, 2))
        elif kind == "circle":
            angles = rng.uniform(0, 2 * np.pi, size=per_rank)
            radii = np.sqrt(rng.uniform(0, 1, size=per_rank))
            pts = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        elif kind == "cluster":
            pts = rng.normal(0, 0.1, size=(per_rank, 2))
        else:
            raise ValueError(kind)
        parts.append(pts)
    return parts


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("kind", ["uniform", "circle"])
def test_distributed_hull_matches_sequential(p, kind):
    parts = _random_parts(p, 50, seed=p, kind=kind)
    hulls, _ = _run_distributed(parts)
    expected = convex_hull_sequential(np.vstack(parts))
    for hull in hulls:
        assert np.allclose(_normalise(hull), _normalise(expected))


def test_all_ranks_return_the_same_hull():
    parts = _random_parts(6, 40, seed=3)
    hulls, _ = _run_distributed(parts)
    for hull in hulls[1:]:
        assert np.array_equal(hull, hulls[0])


def test_distributed_hull_is_counter_clockwise():
    parts = _random_parts(4, 80, seed=9)
    hulls, _ = _run_distributed(parts)
    hull = hulls[0]
    x, y = hull[:, 0], hull[:, 1]
    area = 0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
    assert area > 0


def test_distributed_hull_with_empty_and_unequal_ranks():
    rng = np.random.default_rng(5)
    parts = [rng.uniform(size=(0, 2)), rng.uniform(size=(30, 2)),
             rng.uniform(size=(1, 2)), rng.uniform(size=(7, 2))]
    hulls, _ = _run_distributed(parts)
    expected = convex_hull_sequential(np.vstack(parts))
    assert np.allclose(_normalise(hulls[0]), _normalise(expected))


def test_distributed_hull_globally_empty_input():
    parts = [np.empty((0, 2)) for _ in range(4)]
    hulls, _ = _run_distributed(parts)
    assert all(h.shape == (0, 2) for h in hulls)


def test_distributed_hull_all_points_identical():
    parts = [np.full((5, 2), 3.0) for _ in range(3)]
    hulls, _ = _run_distributed(parts)
    for hull in hulls:
        assert hull.shape == (1, 2)
        assert np.allclose(hull, [[3.0, 3.0]])


def test_distributed_hull_collinear_points():
    xs = np.linspace(0, 1, 24)
    points = np.column_stack([xs, 2 * xs])
    parts = np.array_split(points, 4)
    hulls, _ = _run_distributed(parts)
    expected = _normalise(np.array([[0.0, 0.0], [1.0, 2.0]]))
    for hull in hulls:
        assert np.allclose(_normalise(hull), expected)


def test_distributed_hull_uses_only_local_comm_splits():
    parts = _random_parts(8, 32, seed=1)
    _, stats = _run_distributed(parts)
    # log2(8) = 3 levels of group splitting per side, at most.
    assert all(s.comm_splits <= 2 * 4 for s in stats)
    assert all(s.levels <= 4 for s in stats)


def test_distributed_hull_discards_interior_points():
    parts = _random_parts(4, 200, seed=12, kind="cluster")
    # Add a far-away square so the hull is known to be those four corners.
    corners = np.array([[-50, -50], [50, -50], [50, 50], [-50, 50]], dtype=float)
    parts[0] = np.vstack([parts[0], corners])
    hulls, stats = _run_distributed(parts)
    assert np.allclose(_normalise(hulls[0]), _normalise(corners))
    assert sum(s.points_discarded for s in stats) > 0


def test_quickhull_config_level_bound():
    parts = _random_parts(4, 16, seed=2)
    with pytest.raises(Exception):
        _run_distributed(parts, config=QuickHullConfig(max_levels=0))


@given(p=st.integers(min_value=1, max_value=8),
       per_rank=st.integers(min_value=0, max_value=40),
       seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_distributed_hull_property_matches_sequential(p, per_rank, seed):
    rng = np.random.default_rng(seed)
    # Integer coordinates provoke duplicates and collinear runs.
    parts = [rng.integers(-5, 6, size=(per_rank, 2)).astype(float) for _ in range(p)]
    hulls, _ = _run_distributed(parts)
    expected = convex_hull_sequential(np.vstack(parts) if p else np.empty((0, 2)))
    assert np.allclose(_normalise(hulls[0]), _normalise(expected))
