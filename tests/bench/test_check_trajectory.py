"""Regression tests for the trajectory gate (``benchmarks/check_trajectory.py``).

The gate must fail hard on an ungated bench: a fresh ``BENCH_*.json`` with no
committed baseline, and a committed baseline whose benchmark no longer exists
in any ``bench_*.py`` (deleted/renamed bench).  Both used to be silently
skipped, which let new benchmarks ship without a perf gate.
"""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                       "benchmarks", "check_trajectory.py")


@pytest.fixture(scope="module")
def trajectory():
    spec = importlib.util.spec_from_file_location("check_trajectory", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_bench_json(directory, name, **overrides):
    payload = {"schema": "repro-bench-result/v1", "name": name,
               "wall_clock_s": 1.0, "simulated_us": 123.0,
               "events_processed": 10, "scale": "tiny"}
    payload.update(overrides)
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return path


@pytest.fixture
def dirs(tmp_path):
    results = tmp_path / "bench_results"
    baselines = tmp_path / "baselines"
    bench_dir = tmp_path / "benches"
    for d in (results, baselines, bench_dir):
        d.mkdir()
    (bench_dir / "bench_alpha.py").write_text(
        "def test_alpha(benchmark, scale):\n    pass\n"
        "def test_alpha_extra(benchmark, scale):\n    pass\n")
    return results, baselines, bench_dir


def _argv(results, baselines, bench_dir, *extra):
    return ["--results", str(results), "--baselines", str(baselines),
            "--bench-dir", str(bench_dir), *extra]


def test_matching_results_pass(trajectory, dirs):
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha")
    _write_bench_json(baselines, "test_alpha")
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 0


def test_simulated_us_drift_fails(trajectory, dirs):
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha", simulated_us=124.0)
    _write_bench_json(baselines, "test_alpha")
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 1


def test_fresh_result_without_baseline_fails(trajectory, dirs, capsys):
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha")
    _write_bench_json(results, "test_alpha_extra")
    _write_bench_json(baselines, "test_alpha")
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 1
    err = capsys.readouterr().err
    assert "test_alpha_extra" in err
    assert "--rebaseline" in err


def test_orphaned_baseline_fails(trajectory, dirs, capsys):
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha")
    _write_bench_json(baselines, "test_alpha")
    _write_bench_json(baselines, "test_deleted_bench")
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 1
    err = capsys.readouterr().err
    assert "test_deleted_bench" in err
    assert "orphaned" in err


def test_not_rerun_baseline_skips(trajectory, dirs):
    """A baseline whose bench exists but was not rerun stays a SKIP (CI only
    regenerates a subset of the suite)."""
    results, baselines, bench_dir = dirs
    _write_bench_json(baselines, "test_alpha")
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 0
    assert trajectory.main(
        _argv(results, baselines, bench_dir, "--require-all")) == 1


def test_parametrized_bench_names_are_not_orphans(trajectory, dirs):
    """``test_alpha[small]`` is sanitised to ``test_alpha_small_`` by the
    bench conftest; it must map back to ``test_alpha``."""
    results, baselines, bench_dir = dirs
    _write_bench_json(baselines, "test_alpha_small_")
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 0


def test_empty_bench_dir_refuses_instead_of_orphaning_everything(
        trajectory, dirs, tmp_path, capsys):
    """Regression: with zero collected tests every file would look orphaned —
    a mistyped --bench-dir must refuse, not mass-delete baselines."""
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha")
    baseline = _write_bench_json(baselines, "test_alpha")
    empty = tmp_path / "no-benches-here"
    empty.mkdir()
    assert trajectory.main(_argv(results, baselines, empty)) == 1
    assert trajectory.main(_argv(results, baselines, empty,
                                 "--rebaseline")) == 1
    assert os.path.exists(baseline)
    assert "refusing" in capsys.readouterr().err


def test_rebaseline_adopts_new_and_drops_orphans(trajectory, dirs):
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha", simulated_us=999.0)
    _write_bench_json(results, "test_alpha_extra")
    _write_bench_json(baselines, "test_alpha")
    orphan = _write_bench_json(baselines, "test_deleted_bench")
    assert trajectory.main(
        _argv(results, baselines, bench_dir, "--rebaseline")) == 0
    assert not os.path.exists(orphan)
    with open(os.path.join(baselines, "BENCH_test_alpha.json")) as handle:
        assert json.load(handle)["simulated_us"] == 999.0
    assert os.path.exists(os.path.join(baselines,
                                       "BENCH_test_alpha_extra.json"))
    # After the rebaseline the gate passes again.
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 0


def test_rebaseline_drops_orphan_even_with_stale_fresh_result(trajectory, dirs):
    """Regression: a renamed bench can leave BOTH a stale fresh result and an
    orphaned baseline behind; --rebaseline must still drop the baseline (and
    not adopt the stale fresh file), or the gate fails forever."""
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha")
    _write_bench_json(results, "test_deleted_bench")
    _write_bench_json(baselines, "test_alpha")
    orphan = _write_bench_json(baselines, "test_deleted_bench")
    assert trajectory.main(
        _argv(results, baselines, bench_dir, "--rebaseline")) == 0
    assert not os.path.exists(orphan)
    # The stale fresh file is dropped too, so the gate passes right away.
    assert not os.path.exists(
        os.path.join(results, "BENCH_test_deleted_bench.json"))
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 0


def test_rebaseline_does_not_adopt_orphaned_fresh(trajectory, dirs):
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_stale_deleted")
    _write_bench_json(results, "test_alpha")
    assert trajectory.main(
        _argv(results, baselines, bench_dir, "--rebaseline")) == 0
    assert not os.path.exists(
        os.path.join(baselines, "BENCH_test_stale_deleted.json"))
    # The stale fresh file itself is deleted, not adopted.
    assert not os.path.exists(
        os.path.join(results, "BENCH_test_stale_deleted.json"))


def test_stale_fresh_result_fails_with_cleanup_hint(trajectory, dirs, capsys):
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha")
    _write_bench_json(results, "test_stale_deleted")
    _write_bench_json(baselines, "test_alpha")
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 1
    err = capsys.readouterr().err
    assert "stale fresh result" in err


# ---------------------------------------------------------------------------
# --scale: CI runs the tiny sweep and the paper-scale gate as separate
# passes, each ignoring the other's files entirely.
# ---------------------------------------------------------------------------

def test_scale_filter_ignores_other_scales(trajectory, dirs):
    """A paper-scale fresh result without a baseline must not fail the tiny
    pass (and vice versa); the --scale filter drops the files outright."""
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha")
    _write_bench_json(baselines, "test_alpha")
    _write_bench_json(results, "test_alpha_extra", scale="paper")
    # Unfiltered: the paper file has no baseline -> hard failure.
    assert trajectory.main(_argv(results, baselines, bench_dir)) == 1
    # Tiny pass: the paper file is invisible.
    assert trajectory.main(
        _argv(results, baselines, bench_dir, "--scale", "tiny")) == 0
    # Paper pass: now only the paper file is checked (and still ungated).
    assert trajectory.main(
        _argv(results, baselines, bench_dir, "--scale", "paper")) == 1


def test_scale_filter_with_require_all(trajectory, dirs):
    """--require-all only demands fresh results for baselines of the
    selected scale."""
    results, baselines, bench_dir = dirs
    _write_bench_json(baselines, "test_alpha")                  # tiny
    _write_bench_json(baselines, "test_alpha_extra", scale="paper")
    _write_bench_json(results, "test_alpha_extra", scale="paper")
    assert trajectory.main(
        _argv(results, baselines, bench_dir,
              "--scale", "paper", "--require-all")) == 0
    assert trajectory.main(
        _argv(results, baselines, bench_dir,
              "--scale", "tiny", "--require-all")) == 1


def test_scale_filtered_rebaseline_only_adopts_that_scale(trajectory, dirs):
    results, baselines, bench_dir = dirs
    _write_bench_json(results, "test_alpha")                    # tiny
    _write_bench_json(results, "test_alpha_extra", scale="paper",
                      simulated_us=999.0)
    assert trajectory.main(
        _argv(results, baselines, bench_dir,
              "--rebaseline", "--scale", "paper")) == 0
    assert not os.path.exists(
        os.path.join(baselines, "BENCH_test_alpha.json"))
    adopted = os.path.join(baselines, "BENCH_test_alpha_extra.json")
    assert os.path.exists(adopted)
    with open(adopted) as handle:
        assert json.load(handle)["simulated_us"] == 999.0
