"""Smoke tests of the remaining figure drivers and ablations (tiny sizes).

The full sweeps (with the paper's qualitative claims asserted) live in
``benchmarks/``; here we only check that every driver runs, produces the
expected table structure, and behaves sanely at very small sizes so the unit
test suite stays fast.
"""

import pytest

from repro.bench import ablations, fig7_range_bcast, fig8_jquick, fig9_collectives


def test_fig7_driver_structure():
    table = fig7_range_bcast.run("tiny", num_ranks=32)
    assert {"curve", "bcasts", "n", "rbc_ms", "mpi_ms", "ratio"} <= set(table.columns)
    assert len({row["curve"] for row in table.rows}) == 2
    assert all(row["ratio"] is not None and row["ratio"] > 0 for row in table.rows)


def test_fig8_driver_structure():
    table = fig8_jquick.run("tiny", num_ranks=16)
    assert len({row["curve"] for row in table.rows}) == 3
    rbc = [row["time_ms"] for row in table.rows if row["curve"] == "RBC"]
    ibm = [row["time_ms"] for row in table.rows if row["curve"] == "IBM MPI"]
    assert all(a < b for a, b in zip(rbc, ibm)), "RBC should win at every size"


def test_fig9_driver_single_panel():
    table = fig9_collectives.run("tiny", num_ranks=32,
                                 panels=(("9a", "bcast", "ibm"),))
    assert {row["impl"] for row in table.rows} == {"RBC", "MPI"}
    assert all(row["panel"] == "9a" for row in table.rows)


def test_schedule_ablation_small():
    table = ablations.schedule_ablation(p=16, n_per_proc=4)
    assert len(table.rows) == 4
    mpi_alt = table.lookup("time_ms", backend="mpi", schedule="alternating")
    rbc_alt = table.lookup("time_ms", backend="rbc", schedule="alternating")
    assert mpi_alt > rbc_alt


def test_pivot_ablation_small():
    table = ablations.pivot_ablation(p=16, n_per_proc=8)
    strategies = {row["strategy"] for row in table.rows}
    assert strategies == {"sampled_median", "random_element"}
    assert all(row["levels"] >= 1 for row in table.rows)


def test_assignment_stats_small():
    table = ablations.assignment_stats(p=16)
    for row in table.rows:
        assert row["max_messages_per_step"] <= row["bound_min_p_nproc"]


def test_sorter_comparison_small():
    table = ablations.sorter_comparison(p=8, n_per_proc=16)
    jq = table.filter(algorithm="jquick").rows[0]
    assert jq["perfectly_balanced"]
    assert {row["algorithm"] for row in table.rows} == {"jquick", "hypercube", "samplesort", "multilevel"}


def test_tiebreak_ablation_small():
    table = ablations.tiebreak_ablation(p=8, n_per_proc=8)
    with_tb = table.filter(tie_breaking=True)
    assert all(row["completed"] for row in with_tb.rows)
    without_tb_few = table.filter(tie_breaking=False, workload="few_distinct").rows[0]
    assert not without_tb_few["completed"]


def test_sorter_comparison_requires_power_of_two():
    with pytest.raises(ValueError):
        ablations.sorter_comparison(p=6, n_per_proc=4)


def test_collective_algorithm_ablation_small():
    table = ablations.collective_algorithm_ablation(p=16, exponents=(2, 14))
    assert set(table.columns) == {"operation", "algorithm", "words", "time_ms"}
    operations = {row["operation"] for row in table.rows}
    assert operations == {"bcast", "allreduce"}
    # Every (operation, algorithm, words) combination produced a positive time.
    assert all(row["time_ms"] > 0 for row in table.rows)
    # At 2^14 words on 16 ranks the ring allreduce already beats reduce+bcast.
    ring = table.lookup("time_ms", operation="allreduce", algorithm="ring", words=2 ** 14)
    tree = table.lookup("time_ms", operation="allreduce", algorithm="reduce_bcast", words=2 ** 14)
    assert ring < tree
