"""Tests of the benchmark harness measurement machinery and figure modules."""

import pytest

from repro.bench import fig4_iscan, fig5_comm_split, fig6_overlapping
from repro.bench.harness import (
    COLLECTIVE_OPS,
    Measurement,
    collective_program,
    ratio,
    repeat_max_duration,
    run_rank_durations,
)


def test_measurement_aggregation():
    measurement = Measurement.from_samples([1000.0, 3000.0, 2000.0], messages=7)
    assert measurement.mean_ms == pytest.approx(2.0)
    assert measurement.min_ms == pytest.approx(1.0)
    assert measurement.max_ms == pytest.approx(3.0)
    assert measurement.repetitions == 3
    assert measurement.messages == 7


def test_ratio_helper():
    assert ratio(10.0, 5.0) == 2.0
    assert ratio(None, 5.0) is None
    assert ratio(10.0, 0) is None


def test_run_rank_durations_takes_max_over_ranks():
    def program(env):
        yield from env.sleep(float(env.rank) * 10)
        return float(env.rank) * 10

    duration, result = run_rank_durations(4, program)
    assert duration == 30.0
    assert result.total_time == 30.0


def test_run_rank_durations_ignores_non_participants():
    def program(env):
        yield from env.sleep(5.0)
        return 5.0 if env.rank == 0 else None

    duration, _ = run_rank_durations(3, program)
    assert duration == 5.0


def test_repeat_max_duration_averages_repetitions():
    def make_program(rep):
        def program(env):
            yield from env.sleep(1000.0 * (rep + 1))
            return 1000.0 * (rep + 1)

        return program, (), {}

    measurement = repeat_max_duration(2, make_program, repetitions=3)
    assert measurement.mean_ms == pytest.approx(2.0)
    assert measurement.repetitions == 3


@pytest.mark.parametrize("operation", COLLECTIVE_OPS)
@pytest.mark.parametrize("impl", ["rbc", "mpi"])
def test_collective_program_runs_all_ops(operation, impl):
    duration, result = run_rank_durations(
        8, collective_program, operation=operation, impl=impl,
        vendor="generic", words=16)
    assert duration > 0
    assert result.stats.messages_sent > 0


def test_collective_program_rejects_unknown_inputs():
    with pytest.raises(Exception):
        run_rank_durations(2, collective_program, operation="alltoall",
                           impl="rbc", vendor="generic", words=1)
    with pytest.raises(Exception):
        run_rank_durations(2, collective_program, operation="bcast",
                           impl="other", vendor="generic", words=1)


def test_fig_modules_expose_presets_and_run_tiny():
    """Smoke-test the figure drivers at the smallest scale."""
    table = fig5_comm_split.run("tiny", proc_counts=(8, 16), repetitions=1)
    assert {"curve", "p", "time_ms"} <= set(table.columns)
    assert len(table.rows) == 5 * 2
    assert all(row["time_ms"] >= 0 for row in table.rows)

    table = fig6_overlapping.run("tiny", proc_counts=(16,), repetitions=1)
    assert len(table.rows) == 4

    table = fig4_iscan.run("tiny", num_ranks=16, repetitions=1)
    assert len({row["impl"] for row in table.rows}) == 3


def test_overlapping_groups_cover_every_rank():
    groups = fig6_overlapping.overlapping_groups(16)
    covered = set()
    for first, last in groups:
        assert last - first <= 3
        covered.update(range(first, last + 1))
    assert covered == set(range(16))
    # Boundary ranks appear in exactly two groups.
    multi = [r for r in range(16)
             if sum(first <= r <= last for first, last in groups) == 2]
    assert multi == [3, 6, 9, 12]


def test_telemetry_records_cluster_runs(tmp_path, monkeypatch):
    from repro.bench.harness import TELEMETRY, write_bench_json

    TELEMETRY.reset()

    def program(env):
        yield from env.sleep(100.0)
        return 100.0

    run_rank_durations(4, program)
    run_rank_durations(4, program)
    snap = TELEMETRY.snapshot()
    assert snap["cluster_runs"] == 2
    assert snap["simulated_us"] == pytest.approx(200.0)
    assert snap["events_processed"] > 0

    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = write_bench_json("unit_test", wall_clock_s=0.25,
                            extra={"scale": "tiny"})
    import json
    with open(path) as handle:
        payload = json.load(handle)
    assert path.endswith("BENCH_unit_test.json")
    assert payload["schema"] == "repro-bench-result/v1"
    assert payload["wall_clock_s"] == 0.25
    assert payload["cluster_runs"] == 2
    assert payload["simulated_us"] == pytest.approx(200.0)
    assert payload["scale"] == "tiny"
    TELEMETRY.reset()


def test_hierarchical_bench_module_tiny():
    """Smoke-test the hierarchical machine sweep at the smallest scale."""
    from repro.bench import hierarchical

    table = hierarchical.run("tiny", num_ranks=8)
    machines = {row["machine"] for row in table.rows}
    assert machines == set(hierarchical.MACHINES)
    for row in table.rows:
        assert row["time_ms"] > 0
    # Hierarchy ordering on the sort workload.
    times = {m: table.lookup("time_ms", machine=m, workload="jquick")
             for m in hierarchical.MACHINES}
    assert times["single-node"] <= times["multi-node"] <= times["multi-island"]
