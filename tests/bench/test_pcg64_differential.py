"""Differential trajectory test: ``sampler="pcg64"`` reproduces PR 2 runs.

PR 3 rebuilt the sorters' compute path (fused partition kernels, stateless
counter-based sampling, copy-free exchange, fused compute charges) and
re-baselined ``benchmarks/baselines/`` because the *default* sampler changed.
The legacy ``JQuickConfig(sampler="pcg64")`` path is the proof that nothing
else moved: a fig8-style run with it must be bit-identical — in total
simulated microseconds, discrete events processed and messages sent — to the
telemetry PR 2 committed (snapshot under ``benchmarks/baselines/pcg64_pr2/``).

If this test fails, a supposedly host-only optimisation changed simulation
semantics; do NOT fix it by updating the snapshot.
"""

import json
import os

import pytest

from repro.bench import fig8_jquick
from repro.bench.harness import TELEMETRY

_SNAPSHOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, os.pardir,
    "benchmarks", "baselines", "pcg64_pr2", "BENCH_test_fig8_jquick.json")


def test_fig8_pcg64_bit_identical_to_pr2_baseline(tmp_path, monkeypatch):
    with open(_SNAPSHOT) as handle:
        snapshot = json.load(handle)
    assert snapshot["scale"] == "tiny", "snapshot must be the tiny-scale run"

    # Keep the table/JSON artefacts of this differential run out of the
    # repository's bench_results.
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))

    TELEMETRY.reset()
    fig8_jquick.run("tiny", sampler="pcg64")
    fresh = TELEMETRY.snapshot()

    assert fresh["cluster_runs"] == snapshot["cluster_runs"]
    assert fresh["simulated_us"] == snapshot["simulated_us"], (
        "simulated time drifted vs. the PR 2 pcg64 baseline — a host-only "
        "optimisation changed simulation semantics")
    assert fresh["events_processed"] == snapshot["events_processed"]
    assert fresh["messages_sent"] == snapshot["messages_sent"]
