"""BenchTelemetry / ``BENCH_*.json`` schema: round-trips, observer counting,
and `check_trajectory.py` compatibility of runner-produced files."""

import importlib.util
import json
import os
import shutil

import pytest

from repro.bench.harness import TELEMETRY, BenchTelemetry, write_bench_json
from repro.experiments import ExperimentSpec, run_spec
from repro.simulator import run_program
from repro.simulator.cluster import add_run_observer, remove_run_observer

_TRAJECTORY = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                           "benchmarks", "check_trajectory.py")


@pytest.fixture(scope="module")
def trajectory():
    spec = importlib.util.spec_from_file_location("check_trajectory", _TRAJECTORY)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _ping(env):
    yield from env.compute(10)
    return env.now


# ---------------------------------------------------------------------------
# Observer counting.
# ---------------------------------------------------------------------------

def test_observer_counts_every_cluster_run():
    telemetry = BenchTelemetry()
    add_run_observer(telemetry.record)
    try:
        for _ in range(3):
            run_program(4, _ping)
    finally:
        remove_run_observer(telemetry.record)
    assert telemetry.cluster_runs == 3
    assert telemetry.simulated_us > 0
    assert telemetry.events_processed > 0

    # Removed observers stop counting; reset() zeroes every counter.
    run_program(4, _ping)
    assert telemetry.cluster_runs == 3
    telemetry.reset()
    snapshot = telemetry.snapshot()
    assert snapshot["simulated_us"] == 0.0
    assert set(snapshot) == {"simulated_us", *BenchTelemetry._INT_FIELDS}
    assert all(snapshot[name] == 0 for name in BenchTelemetry._INT_FIELDS)


def test_global_telemetry_observes_direct_cluster_runs():
    before = TELEMETRY.snapshot()
    run_program(4, _ping)
    after = TELEMETRY.snapshot()
    assert after["cluster_runs"] == before["cluster_runs"] + 1


def test_merge_accumulates_snapshots():
    telemetry = BenchTelemetry()
    telemetry.merge({"cluster_runs": 2, "simulated_us": 10.5,
                     "events_processed": 7, "messages_sent": 3})
    telemetry.merge({"cluster_runs": 1, "simulated_us": 0.5,
                     "message_pool_hits": 4, "message_pool_recycled": 2})
    snapshot = telemetry.snapshot()
    expected = {"cluster_runs": 3, "simulated_us": 11.0,
                "events_processed": 7, "messages_sent": 3,
                "message_pool_hits": 4, "message_pool_recycled": 2,
                "message_pool_drops": 0}
    assert {key: snapshot[key] for key in expected} == expected
    # Keys absent from both snapshots (tier counters etc.) stay zero.
    assert all(snapshot[key] == 0 for key in set(snapshot) - set(expected))


# ---------------------------------------------------------------------------
# write_bench_json round-trip.
# ---------------------------------------------------------------------------

def test_write_bench_json_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    telemetry = BenchTelemetry()
    add_run_observer(telemetry.record)
    try:
        run_program(4, _ping)
    finally:
        remove_run_observer(telemetry.record)

    path = write_bench_json("round_trip", wall_clock_s=1.25,
                            telemetry=telemetry, extra={"scale": "tiny"})
    assert os.path.basename(path) == "BENCH_round_trip.json"
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["schema"] == "repro-bench-result/v1"
    assert payload["name"] == "round_trip"
    assert payload["wall_clock_s"] == 1.25
    assert payload["scale"] == "tiny"
    for key, value in telemetry.snapshot().items():
        assert payload[key] == value

    # The snapshot written is exactly what merge() restores.
    restored = BenchTelemetry()
    restored.merge(payload)
    assert restored.snapshot() == telemetry.snapshot()


def test_write_bench_json_directory_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "default"))
    explicit = tmp_path / "explicit"
    explicit.mkdir()
    path = write_bench_json("placed", wall_clock_s=0.0,
                            telemetry=BenchTelemetry(),
                            directory=str(explicit))
    assert os.path.dirname(path) == str(explicit)
    assert not os.path.exists(tmp_path / "default")


# ---------------------------------------------------------------------------
# check_trajectory compatibility of runner-produced files.
# ---------------------------------------------------------------------------

def test_runner_bench_json_passes_trajectory_gate(tmp_path, trajectory):
    """A sweep's BENCH file must be comparable by the trajectory gate:
    identical re-runs pass, simulated_us drift fails."""
    spec = ExperimentSpec.load("smoke").override(num_ranks=8)
    run = run_spec(spec, workers=2)
    assert run.failed == 0

    results = tmp_path / "results"
    baselines = tmp_path / "baselines"
    bench_dir = tmp_path / "benches"
    for directory in (results, baselines, bench_dir):
        directory.mkdir()
    # The gate matches BENCH names against bench_*.py test definitions.
    (bench_dir / "bench_sweeps.py").write_text(
        "def test_smoke(benchmark, scale):\n    pass\n")

    path = write_bench_json("test_smoke", wall_clock_s=run.wall_clock_s,
                            telemetry=run.telemetry(),
                            extra={"scale": "tiny"},
                            directory=str(results))
    shutil.copy(path, baselines / os.path.basename(path))

    argv = ["--results", str(results), "--baselines", str(baselines),
            "--bench-dir", str(bench_dir)]
    assert trajectory.main(argv) == 0

    # Simulated-time drift (a semantic change) must fail the gate.
    with open(path) as handle:
        payload = json.load(handle)
    payload["simulated_us"] += 1.0
    with open(path, "w") as handle:
        json.dump(payload, handle)
    assert trajectory.main(argv) == 1
