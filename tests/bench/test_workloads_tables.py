"""Tests of the benchmark harness building blocks: workloads and tables."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.tables import Table, format_number, results_dir
from repro.bench.workloads import WORKLOADS, generate, split_balanced, workload_names
from repro.sorting.intervals import capacity


# ---------------------------------------------------------------------------
# Workloads.
# ---------------------------------------------------------------------------

def test_workload_names_cover_registry():
    assert set(workload_names()) == set(WORKLOADS)
    assert "uniform" in WORKLOADS and "duplicates" in WORKLOADS


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
def test_generate_produces_balanced_layout(kind):
    n, p = 103, 7
    parts = generate(kind, n, p, seed=3)
    assert len(parts) == p
    assert [part.size for part in parts] == [capacity(i, n, p) for i in range(p)]
    assert sum(part.size for part in parts) == n


def test_generate_is_deterministic_per_seed():
    a = generate("uniform", 50, 5, seed=9)
    b = generate("uniform", 50, 5, seed=9)
    c = generate("uniform", 50, 5, seed=10)
    for x, y in zip(a, b):
        np.testing.assert_array_equal(x, y)
    assert any(not np.array_equal(x, z) for x, z in zip(a, c))


def test_generate_unknown_kind():
    with pytest.raises(KeyError):
        generate("nope", 10, 2)


def test_specific_workload_shapes():
    all_equal = np.concatenate(generate("all_equal", 40, 4))
    assert np.unique(all_equal).size == 1
    few = np.concatenate(generate("few_distinct", 400, 4))
    assert np.unique(few).size <= 4
    ordered = np.concatenate(generate("sorted", 100, 4))
    assert np.all(np.diff(ordered) >= 0)
    reverse = np.concatenate(generate("reverse", 100, 4))
    assert np.all(np.diff(reverse) <= 0)


@given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=32))
@settings(max_examples=50)
def test_property_split_balanced_round_trips(n, p):
    values = np.arange(n, dtype=np.float64)
    parts = split_balanced(values, p)
    assert len(parts) == p
    np.testing.assert_array_equal(np.concatenate(parts) if parts else values, values)
    sizes = [part.size for part in parts]
    assert max(sizes) - min(sizes) <= 1 if sizes else True


# ---------------------------------------------------------------------------
# Tables.
# ---------------------------------------------------------------------------

def test_format_number_variants():
    assert format_number(None) == "-"
    assert format_number(True) == "yes"
    assert format_number(12345.0) == "12,345"
    assert format_number(12.34) == "12.3"
    assert format_number(0.5) == "0.500"
    assert format_number(1e-7) == "1.00e-07"
    assert format_number("text") == "text"
    assert format_number(0.0) == "0"


def _example_table():
    table = Table(title="Example", columns=["curve", "p", "time_ms"])
    table.add_row(curve="a", p=2, time_ms=1.0)
    table.add_row(curve="a", p=4, time_ms=2.0)
    table.add_row(curve="b", p=2, time_ms=5.0)
    table.add_note("a note")
    return table


def test_table_filter_lookup_column():
    table = _example_table()
    assert table.column("p") == [2, 4, 2]
    assert table.lookup("time_ms", curve="a", p=4) == 2.0
    assert table.lookup("time_ms", curve="c", p=4) is None
    filtered = table.filter(curve="a")
    assert len(filtered.rows) == 2
    assert filtered.notes == ["a note"]


def test_table_text_rendering_contains_everything():
    text = _example_table().to_text()
    assert "Example" in text
    assert "curve" in text and "time_ms" in text
    assert "note: a note" in text
    assert "5.00" in text or "5.000" in text


def test_table_save_writes_text_and_json(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = _example_table().save("example")
    assert os.path.exists(path)
    assert os.path.exists(str(tmp_path / "example.json"))
    assert results_dir() == str(tmp_path)
    content = open(path).read()
    assert "Example" in content
