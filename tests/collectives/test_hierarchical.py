"""Tests of the topology-aware node-leader collectives and per-tier ports.

Covers the hierarchy view (leader election, ragged nodes, offset/strided
groups), correctness of the node-leader schedules against the flat results,
the flat-machine bit-identity guarantee of the default algorithm selection,
and the shared-NIC (``ports_per_node``) transport serialisation.
"""

import numpy as np
import pytest

from repro.collectives.hierarchical import build_hierarchy, hierarchy_of
from repro.mpi import init_mpi
from repro.rbc import collectives as rbc_collectives
from repro.rbc import create_rbc_comm
from repro.rbc.comm import RbcComm
from repro.simulator import (
    Cluster,
    HierarchicalParams,
    NetworkParams,
    Placement,
)

TWO_TIER = HierarchicalParams.two_tier(ranks_per_node=4)
THREE_TIER = HierarchicalParams(ranks_per_node=4, nodes_per_island=2)


# ---------------------------------------------------------------------------
# Hierarchy construction and leader election.
# ---------------------------------------------------------------------------

def test_build_hierarchy_block_placement():
    placement = Placement.regular(8, ranks_per_node=4, nodes_per_island=1)
    h = build_hierarchy(placement, range(8))
    assert h.node_members == ((0, 1, 2, 3), (4, 5, 6, 7))
    assert h.node_of == (0, 0, 0, 0, 1, 1, 1, 1)
    assert h.islands == ((0,), (1,))
    assert h.num_islands == 2
    assert h.nontrivial


def test_build_hierarchy_ragged_last_node():
    """The regression the leader election must survive: a group whose size is
    not a multiple of the node size elects the smallest member of the small
    last node, and the root still replaces its own node's leader."""
    placement = Placement.regular(10, ranks_per_node=4, nodes_per_island=8)
    h = build_hierarchy(placement, range(10))
    assert h.node_members == ((0, 1, 2, 3), (4, 5, 6, 7), (8, 9))
    node_leaders, island_leaders = h.leaders_for(0)
    assert node_leaders == (0, 4, 8)
    assert island_leaders == (0,)
    node_leaders, island_leaders = h.leaders_for(9)
    assert node_leaders == (0, 4, 9)
    assert island_leaders == (9,)
    node_leaders, _ = h.leaders_for(5)
    assert node_leaders == (0, 5, 8)


def test_build_hierarchy_offset_group():
    """A group starting mid-node (the RBC range case) gets ragged first and
    last nodes; group ranks are renumbered from 0."""
    placement = Placement.regular(12, ranks_per_node=4, nodes_per_island=8)
    h = build_hierarchy(placement, range(3, 3 + 7))  # world 3..9
    assert h.node_members == ((0,), (1, 2, 3, 4), (5, 6))
    assert h.nontrivial


def test_build_hierarchy_cyclic_placement():
    placement = Placement.cyclic(8, num_nodes=4)
    h = build_hierarchy(placement, range(8))
    assert h.node_members == ((0, 4), (1, 5), (2, 6), (3, 7))
    assert h.num_islands == 1


def test_leaders_respect_islands():
    h = build_hierarchy(Placement.regular(16, 4, 2), range(16))
    assert h.islands == ((0, 1), (2, 3))
    node_leaders, island_leaders = h.leaders_for(6)
    # Root 6 (node 1) leads its node and its island; the other island is led
    # by the leader of its first node.
    assert node_leaders == (0, 6, 8, 12)
    assert island_leaders == (6, 8)


# ---------------------------------------------------------------------------
# hierarchy_of selection predicate.
# ---------------------------------------------------------------------------

def _probe_hierarchy(num_ranks, params, placement=None, first=0, last=None,
                     stride=1):
    """Run one rank program that reports hierarchy_of on an RBC endpoint."""
    def program(env):
        mpi = init_mpi(env, vendor="generic")
        world = yield from create_rbc_comm(mpi)
        comm = world if last is None else RbcComm(mpi, first, last, stride)
        if comm.rank is None:
            return "non-member"
        from repro.rbc.collectives import _endpoint
        from repro.rbc import tags
        ep = _endpoint(comm, tags.BCAST_TAG)
        h = hierarchy_of(ep)
        return None if h is None else h.node_members

    result = Cluster(num_ranks, params, placement=placement).run(program)
    return next(r for r in result.results if r != "non-member")


def test_hierarchy_of_is_none_on_flat_machines():
    assert _probe_hierarchy(8, NetworkParams.default()) is None


def test_hierarchy_of_tolerates_duck_typed_cost_models():
    """A cost model without uniform_link (pre-dating the method, not a
    CostModel subclass) must stay on the flat path, not AttributeError."""
    class Legacy:
        gamma = 0.002

        def link(self, src, dst, placement=None):
            return (5.0, 0.002)

        def worst_link(self):
            return (5.0, 0.002)

        def message_cost(self, words, src=None, dst=None, placement=None):
            return 5.0 + words * 0.002

        def compute_cost(self, operations):
            return operations * self.gamma

        def default_placement(self, num_ranks):
            return Placement.single_node(num_ranks)

    result = Cluster(4, Legacy()).run(
        _collective_program, "allreduce", 0, None)
    expected = [float(i * 4 + sum(range(4))) for i in range(5)]
    assert all(value == expected for value in result.results)


def test_hierarchy_of_is_none_on_single_node():
    assert _probe_hierarchy(
        8, TWO_TIER, placement=Placement.single_node(8)) is None


def test_hierarchy_of_is_none_for_one_rank_per_node_single_island():
    """One rank per node on one island IS the flat binomial tree."""
    placement = Placement.regular(6, ranks_per_node=1, nodes_per_island=8)
    assert _probe_hierarchy(6, TWO_TIER, placement=placement) is None


def test_hierarchy_of_nontrivial_on_multi_node():
    members = _probe_hierarchy(8, TWO_TIER)
    assert members == ((0, 1, 2, 3), (4, 5, 6, 7))


def test_hierarchy_of_subgroup_is_group_local():
    members = _probe_hierarchy(12, TWO_TIER, first=3, last=9)
    assert members == ((0,), (1, 2, 3, 4), (5, 6))


def test_hierarchy_cache_distinguishes_affine_from_member_tuples():
    """Regression: an affine group's cache key (first, stride, size) must not
    collide with a non-affine group whose member tuple holds the same three
    integers — each communicator must get its own Hierarchy."""
    from repro.collectives.endpoint import TransportEndpoint

    placement = Placement.regular(6, ranks_per_node=2, nodes_per_island=8)
    cluster = Cluster(6, TWO_TIER, placement=placement)
    env = cluster.envs[0]

    def endpoint(members, affine):
        return TransportEndpoint(
            env, cluster.transport, context="ctx", tag=1, rank=0,
            size=len(members), to_world=lambda g: members[g],
            world_affine=affine)

    # Affine {0, 2, 4}: one rank per node, one island -> trivial (None).
    # Non-affine members (0, 2, 3): nodes ((0,), (1, 2)) -> nontrivial.
    # Both would key as (0, 2, 3) without the affine tag; check both
    # insertion orders.
    affine_ep = endpoint((0, 2, 4), (0, 2))
    tuple_ep = endpoint((0, 2, 3), None)
    assert hierarchy_of(affine_ep) is None
    h = hierarchy_of(tuple_ep)
    assert h is not None and h.node_members == ((0,), (1, 2))

    cluster.transport._hierarchy_cache.clear()
    h = hierarchy_of(tuple_ep)
    assert h is not None and h.node_members == ((0,), (1, 2))
    assert hierarchy_of(affine_ep) is None


# ---------------------------------------------------------------------------
# Correctness of the node-leader schedules.
# ---------------------------------------------------------------------------

def _collective_program(env, operation, root, algorithm, words=5,
                        first=0, last=None, stride=1):
    mpi = init_mpi(env, vendor="generic")
    world = yield from create_rbc_comm(mpi)
    comm = world if last is None else RbcComm(mpi, first, last, stride)
    if comm.rank is None:
        return "non-member"
    rank, size = comm.rank, comm.size
    payload = np.arange(words, dtype=np.float64) + rank
    if operation == "bcast":
        value = yield from rbc_collectives.bcast(
            comm, payload if rank == root else None, root,
            algorithm=algorithm)
        return np.asarray(value).tolist()
    if operation == "reduce":
        value = yield from rbc_collectives.reduce(comm, payload, root=root,
                                                  algorithm=algorithm)
        return None if value is None else np.asarray(value).tolist()
    if operation == "allreduce":
        value = yield from rbc_collectives.allreduce(comm, payload,
                                                     algorithm=algorithm)
        return np.asarray(value).tolist()
    if operation == "barrier":
        yield from rbc_collectives.barrier(comm, algorithm=algorithm)
        return env.now
    raise ValueError(operation)


MACHINES = [
    pytest.param(8, TWO_TIER, None, id="2tier-aligned"),
    pytest.param(10, TWO_TIER, None, id="2tier-ragged"),
    pytest.param(16, THREE_TIER, None, id="3tier"),
    pytest.param(8, HierarchicalParams.two_tier(ranks_per_node=4,
                                                ports_per_node=1),
                 None, id="2tier-nic"),
    pytest.param(8, TWO_TIER, Placement.cyclic(8, 4), id="cyclic"),
]


@pytest.mark.parametrize("num_ranks,params,placement", MACHINES)
@pytest.mark.parametrize("root", [0, 1, 5])
def test_hier_bcast_delivers_root_value(num_ranks, params, placement, root):
    result = Cluster(num_ranks, params, placement=placement).run(
        _collective_program, "bcast", root, "hierarchical")
    expected = [float(root + i) for i in range(5)]
    assert all(value == expected for value in result.results)


@pytest.mark.parametrize("num_ranks,params,placement", MACHINES)
@pytest.mark.parametrize("root", [0, 5])
def test_hier_reduce_sums_at_root(num_ranks, params, placement, root):
    result = Cluster(num_ranks, params, placement=placement).run(
        _collective_program, "reduce", root, "hierarchical")
    p = num_ranks
    expected = [float(i * p + sum(range(p))) for i in range(5)]
    for rank, value in enumerate(result.results):
        if rank == root:
            assert value == expected
        else:
            assert value is None


@pytest.mark.parametrize("num_ranks,params,placement", MACHINES)
def test_hier_allreduce_everyone_gets_sum(num_ranks, params, placement):
    result = Cluster(num_ranks, params, placement=placement).run(
        _collective_program, "allreduce", 0, "hierarchical")
    p = num_ranks
    expected = [float(i * p + sum(range(p))) for i in range(5)]
    assert all(value == expected for value in result.results)


@pytest.mark.parametrize("num_ranks,params,placement", MACHINES)
def test_hier_barrier_completes(num_ranks, params, placement):
    result = Cluster(num_ranks, params, placement=placement).run(
        _collective_program, "barrier", 0, "hierarchical")
    assert all(t is not None and t > 0 for t in result.results)


def test_hier_collectives_on_offset_strided_subgroup():
    """Node-leader schedules on an RBC range that starts mid-node and strides
    over every second rank (members world 3, 5, 7, 9, 11, 13)."""
    result = Cluster(16, TWO_TIER).run(
        _collective_program, "allreduce", 0, "hierarchical",
        first=3, last=13, stride=2)
    p = 6
    expected = [float(i * p + sum(range(p))) for i in range(5)]
    for rank, value in enumerate(result.results):
        if 3 <= rank <= 13 and (rank - 3) % 2 == 0:
            assert value == expected
        else:
            assert value == "non-member"


def test_hier_barrier_synchronises_late_arrivals():
    """No rank may leave the hierarchical barrier before the last one enters."""
    def program(env):
        mpi = init_mpi(env, vendor="generic")
        comm = yield from create_rbc_comm(mpi)
        yield from env.sleep(100.0 * env.rank)
        entered = env.now
        yield from rbc_collectives.barrier(comm, algorithm="hierarchical")
        return entered, env.now

    result = Cluster(6, TWO_TIER).run(program)
    last_entry = max(entered for entered, _ in result.results)
    assert all(left >= last_entry for _, left in result.results)


# ---------------------------------------------------------------------------
# Default selection: hierarchical machines switch, flat machines must not.
# ---------------------------------------------------------------------------

def _run_counters(num_ranks, params, operation, algorithm, placement=None):
    cluster = Cluster(num_ranks, params, placement=placement)
    result = cluster.run(_collective_program, operation, 0, algorithm)
    return (result.total_time, result.events_processed,
            result.stats.messages_sent, result.results)


@pytest.mark.parametrize("operation", ["bcast", "reduce", "allreduce",
                                       "barrier"])
def test_flat_machine_default_is_bit_identical(operation):
    """On flat machines the default (None) algorithm must reproduce the
    explicit flat algorithm exactly: simulated time, events, messages."""
    flat = {"bcast": "binomial", "reduce": "binomial",
            "allreduce": "reduce_bcast", "barrier": "dissemination"}
    default = _run_counters(8, NetworkParams.default(), operation, None)
    explicit = _run_counters(8, NetworkParams.default(), operation,
                             flat[operation])
    assert default == explicit


@pytest.mark.parametrize("operation", ["bcast", "reduce", "allreduce"])
def test_hierarchical_machine_default_selects_node_leader(operation):
    """On a multi-node machine the default must equal the explicit
    hierarchical schedule (same times, events, messages)."""
    params = HierarchicalParams.two_tier(ranks_per_node=4)
    placement = Placement.cyclic(8, 4)
    default = _run_counters(8, params, operation, None, placement=placement)
    hier = _run_counters(8, params, operation, "hierarchical",
                         placement=placement)
    assert default == hier


def test_barrier_default_is_dissemination_without_shared_nics():
    params = HierarchicalParams.two_tier(ranks_per_node=4)
    default = _run_counters(8, params, "barrier", None)
    dissemination = _run_counters(8, params, "barrier", "dissemination")
    hier = _run_counters(8, params, "barrier", "hierarchical")
    assert default == dissemination
    assert default != hier


def test_barrier_default_is_hierarchical_with_shared_nics():
    params = HierarchicalParams.two_tier(ranks_per_node=4, ports_per_node=1)
    default = _run_counters(8, params, "barrier", None)
    hier = _run_counters(8, params, "barrier", "hierarchical")
    assert default == hier


def test_unknown_algorithms_rejected():
    def program(env):
        mpi = init_mpi(env, vendor="generic")
        comm = yield from create_rbc_comm(mpi)
        with pytest.raises(ValueError, match="unknown reduce algorithm"):
            rbc_collectives.ireduce(comm, 1.0, algorithm="bogus")
        with pytest.raises(ValueError, match="unknown allreduce algorithm"):
            rbc_collectives.iallreduce(comm, 1.0, algorithm="bogus")
        with pytest.raises(ValueError, match="unknown barrier algorithm"):
            rbc_collectives.ibarrier(comm, algorithm="bogus")
        with pytest.raises(ValueError, match="unknown broadcast algorithm"):
            rbc_collectives.ibcast(comm, 1.0, algorithm="bogus")
        yield from env.sleep(1.0)
        return True

    assert all(Cluster(2).run(program).results)


# ---------------------------------------------------------------------------
# Shared node NICs (ports_per_node).
# ---------------------------------------------------------------------------

def _nic_cluster(ports, num_ranks=8, ranks_per_node=2):
    params = HierarchicalParams.two_tier(ranks_per_node=ranks_per_node,
                                         ports_per_node=ports)
    return Cluster(num_ranks, params)


def test_inter_node_sends_serialise_on_shared_nic():
    """Two ranks of one node sending inter-node at the same instant share one
    NIC: the second transfer starts only when the first has left."""
    cluster = _nic_cluster(ports=1)
    transport = cluster.transport
    alpha = cluster.params.inter_node_alpha
    first = transport.post_send(0, 2, 0, "ctx", None, 0)
    second = transport.post_send(1, 3, 0, "ctx", None, 0)
    assert first.complete_time == pytest.approx(alpha)
    assert second.complete_time == pytest.approx(2 * alpha)


def test_per_rank_ports_do_not_serialise_across_ranks():
    cluster = _nic_cluster(ports=None)
    transport = cluster.transport
    alpha = cluster.params.inter_node_alpha
    first = transport.post_send(0, 2, 0, "ctx", None, 0)
    second = transport.post_send(1, 3, 0, "ctx", None, 0)
    assert first.complete_time == pytest.approx(alpha)
    assert second.complete_time == pytest.approx(alpha)


def test_two_nic_ports_allow_two_concurrent_transfers():
    cluster = _nic_cluster(ports=2, num_ranks=12, ranks_per_node=3)
    transport = cluster.transport
    alpha = cluster.params.inter_node_alpha
    sends = [transport.post_send(src, src + 3, 0, "ctx", None, 0)
             for src in range(3)]
    times = sorted(handle.complete_time for handle in sends)
    assert times[0] == pytest.approx(alpha)
    assert times[1] == pytest.approx(alpha)
    assert times[2] == pytest.approx(2 * alpha)


def test_intra_node_traffic_bypasses_the_nic():
    """Shared-memory transfers use the per-rank ports even while the node's
    NIC is busy."""
    cluster = _nic_cluster(ports=1)
    transport = cluster.transport
    transport.post_send(0, 2, 0, "ctx", None, 0)          # NIC busy
    intra = transport.post_send(0, 1, 0, "ctx", None, 0)  # same node
    assert intra.complete_time == pytest.approx(
        cluster.params.intra_node_alpha)


def test_receive_side_nic_serialises_incast():
    """Transfers from two different nodes into one node serialise their data
    phases on the destination node's shared NIC."""
    cluster = _nic_cluster(ports=1, num_ranks=12, ranks_per_node=2)
    transport = cluster.transport
    params = cluster.params
    words = 1000
    wire = words * params.inter_node_beta
    # Ranks 0 (node 0) and 2 (node 1) send to ranks 4 and 5 (both node 2).
    transport.post_send(0, 4, 0, "ctx", None, words)
    transport.post_send(2, 5, 0, "ctx", None, words)
    leave = params.inter_node_alpha + wire
    engine = cluster.engine
    arrivals = sorted(time for time, *_ in engine._heap)
    assert arrivals[0] == pytest.approx(leave)
    assert arrivals[1] == pytest.approx(leave + wire)


def test_nic_machine_runs_collectives_correctly():
    params = HierarchicalParams.two_tier(ranks_per_node=4, ports_per_node=1)
    result = Cluster(8, params).run(_collective_program, "allreduce", 0, None)
    expected = [float(i * 8 + sum(range(8))) for i in range(5)]
    assert all(value == expected for value in result.results)


# ---------------------------------------------------------------------------
# Vectorised hierarchy construction (groups >= 4096 members switch to the
# numpy bulk path; the scalar loop is the semantic reference).
# ---------------------------------------------------------------------------

def _hierarchies_equal(a, b):
    return (a.node_members == b.node_members and a.node_of == b.node_of
            and a.islands == b.islands
            and a.island_of_node == b.island_of_node
            and a.nontrivial == b.nontrivial)


def test_build_hierarchy_vectorised_matches_scalar():
    import random

    from repro.collectives import hierarchical as H

    def scalar(placement, world_ranks):
        threshold = H._HIERARCHY_VECTOR_MIN
        try:
            H._HIERARCHY_VECTOR_MIN = 1 << 60
            return H.build_hierarchy(placement, world_ranks)
        finally:
            H._HIERARCHY_VECTOR_MIN = threshold

    rng = random.Random(11)
    block = Placement.regular(16384, ranks_per_node=16, nodes_per_island=8)
    cyclic = Placement.cyclic(12000, num_nodes=77, nodes_per_island=9)
    cases = [
        (block, range(16384)),                        # full affine world
        (block, range(5, 5 + 3 * 5000, 3)),           # strided offset range
        (cyclic, range(12000)),
        (cyclic, tuple(sorted(rng.sample(range(12000), 8192)))),
    ]
    shuffled = list(range(8192))
    rng.shuffle(shuffled)
    cases.append((block, tuple(shuffled)))            # non-monotone members
    for placement, world_ranks in cases:
        vectorised = H._build_hierarchy_vectorised(placement, world_ranks)
        assert vectorised is not None
        reference = scalar(placement, world_ranks)
        assert _hierarchies_equal(vectorised, reference)
        assert type(vectorised.node_of[0]) is int
        assert type(vectorised.node_members[0][0]) is int


def test_build_hierarchy_string_labels_fall_back_to_scalar():
    from repro.collectives.hierarchical import _build_hierarchy_vectorised

    placement = Placement(nodes=tuple(f"n{r // 2}" for r in range(4096)),
                          islands=tuple("i0" for _ in range(4096)))
    assert _build_hierarchy_vectorised(placement, range(4096)) is None
    hierarchy = build_hierarchy(placement, range(4096))  # scalar fallback
    assert hierarchy.num_nodes == 2048
