"""Large-input collective algorithms: block helpers, correctness, cost shape."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collectives.large import (
    LARGE_ALLREDUCE_THRESHOLD_WORDS,
    LARGE_BCAST_THRESHOLD_WORDS,
    block_bounds,
    block_sizes,
    choose_allreduce_algorithm,
    choose_bcast_algorithm,
    split_blocks,
)
from repro.mpi import SUM, MAX, init_mpi
from repro.rbc import collectives as coll
from repro.rbc import create_rbc_comm


def _world(env):
    world_mpi = init_mpi(env)
    world = yield from create_rbc_comm(world_mpi)
    return world


# ---------------------------------------------------------------------------
# Block distribution helpers.
# ---------------------------------------------------------------------------

@given(total=st.integers(min_value=0, max_value=5000),
       parts=st.integers(min_value=1, max_value=64))
@settings(max_examples=100, deadline=None)
def test_block_sizes_partition_exactly(total, parts):
    sizes = block_sizes(total, parts)
    assert len(sizes) == parts
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1
    # The larger blocks come first (MPI block distribution).
    assert sizes == sorted(sizes, reverse=True)


@given(total=st.integers(min_value=0, max_value=5000),
       parts=st.integers(min_value=1, max_value=64))
@settings(max_examples=100, deadline=None)
def test_block_bounds_are_contiguous(total, parts):
    bounds = block_bounds(total, parts)
    assert bounds[0][0] == 0
    assert bounds[-1][1] == total
    for (lo_a, hi_a), (lo_b, _) in zip(bounds, bounds[1:]):
        assert hi_a == lo_b
        assert lo_a <= hi_a


def test_block_sizes_rejects_bad_arguments():
    with pytest.raises(ValueError):
        block_sizes(10, 0)
    with pytest.raises(ValueError):
        block_sizes(-1, 4)


def test_split_blocks_returns_views_covering_the_array():
    array = np.arange(17, dtype=np.float64)
    blocks = split_blocks(array, 5)
    assert len(blocks) == 5
    assert np.array_equal(np.concatenate(blocks), array)
    # Views, not copies.
    blocks[0][0] = -1.0
    assert array[0] == -1.0


def test_split_blocks_rejects_matrices():
    with pytest.raises(ValueError):
        split_blocks(np.zeros((4, 4)), 2)


# ---------------------------------------------------------------------------
# Algorithm selection heuristics.
# ---------------------------------------------------------------------------

def test_choose_bcast_algorithm_crossover():
    small = np.zeros(8)
    large = np.zeros(LARGE_BCAST_THRESHOLD_WORDS + 1)
    assert choose_bcast_algorithm(small.size, 64, small) == "binomial"
    assert choose_bcast_algorithm(large.size, 64, large) == "scatter_allgather"
    # Tiny groups never switch: there is nothing to scatter over.
    assert choose_bcast_algorithm(large.size, 2, large) == "binomial"
    # Non-array payloads cannot be split into blocks.
    assert choose_bcast_algorithm(10 ** 6, 64, {"big": "object"}) == "binomial"
    assert choose_bcast_algorithm(10 ** 6, 64, np.zeros((1000, 1000))) == "binomial"


def test_choose_allreduce_algorithm_crossover():
    small = np.zeros(8)
    large = np.zeros(LARGE_ALLREDUCE_THRESHOLD_WORDS + 1)
    assert choose_allreduce_algorithm(small.size, 64, small) == "reduce_bcast"
    assert choose_allreduce_algorithm(large.size, 64, large) == "ring"
    assert choose_allreduce_algorithm(large.size, 2, large) == "reduce_bcast"
    assert choose_allreduce_algorithm(10 ** 6, 64, [1, 2, 3]) == "reduce_bcast"


# ---------------------------------------------------------------------------
# Correctness of the algorithms through the RBC API.
# ---------------------------------------------------------------------------

SIZES = [1, 2, 3, 5, 8, 13]


@pytest.mark.parametrize("p", SIZES)
def test_scatter_delivers_each_ranks_payload(run_ranks, p):
    def program(env):
        world = yield from _world(env)
        values = None
        root = p - 1
        if world.rank == root:
            values = [f"item-{i}" for i in range(p)]
        mine = yield from coll.scatter(world, values, root=root)
        return mine

    results = run_ranks(p, program)
    assert results == [f"item-{i}" for i in range(p)]


def test_scatterv_with_variable_sized_arrays(run_ranks):
    p = 6

    def program(env):
        world = yield from _world(env)
        values = None
        if world.rank == 0:
            values = [np.full(i + 1, float(i)) for i in range(p)]
        mine = yield from coll.scatterv(world, values, root=0)
        return mine.size, float(mine[0])

    results = run_ranks(p, program)
    assert results == [(i + 1, float(i)) for i in range(p)]


def test_scatter_requires_values_on_root(run_ranks):
    def program(env):
        world = yield from _world(env)
        if world.rank == 0:
            with pytest.raises(ValueError):
                coll.iscatter(world, None, root=0)
            with pytest.raises(ValueError):
                coll.iscatter(world, [1, 2], root=0)  # wrong length
            return "checked"
        return "other"

    results = run_ranks(4, program)
    assert results[0] == "checked"


@pytest.mark.parametrize("p", SIZES)
def test_ring_allgatherv_collects_every_contribution(run_ranks, p):
    def program(env):
        world = yield from _world(env)
        payload = np.arange(world.rank + 1, dtype=np.float64)
        gathered = yield from coll.allgatherv(world, payload)
        return [np.asarray(chunk).size for chunk in gathered]

    results = run_ranks(p, program)
    for sizes in results:
        assert sizes == [r + 1 for r in range(p)]


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("algorithm", ["scatter_allgather", "pipeline", "auto"])
def test_large_bcast_algorithms_match_binomial(run_ranks, p, algorithm):
    n = 1000

    def program(env):
        world = yield from _world(env)
        value = None
        if world.rank == 0:
            value = np.arange(n, dtype=np.float64)
        result = yield from coll.bcast(world, value, root=0,
                                       algorithm=algorithm, segment_words=128)
        return float(np.sum(result)), int(np.asarray(result).size)

    results = run_ranks(p, program)
    expected = (float(np.sum(np.arange(n))), n)
    assert all(r == expected for r in results)


def test_bcast_rejects_unknown_algorithm(run_ranks):
    def program(env):
        world = yield from _world(env)
        if world.rank == 0:
            with pytest.raises(ValueError):
                coll.ibcast(world, np.zeros(4), 0, algorithm="quantum")
        return True

    assert all(run_ranks(3, program))


@pytest.mark.parametrize("p", SIZES)
def test_reduce_scatter_blocks_sum_to_global_reduction(run_ranks, p):
    n = 97

    def program(env):
        world = yield from _world(env)
        contribution = np.arange(n, dtype=np.float64) + world.rank
        block = yield from coll.reduce_scatter(world, contribution, SUM)
        return np.asarray(block)

    results = run_ranks(p, program)
    expected = p * np.arange(n, dtype=np.float64) + sum(range(p))
    assert np.array_equal(np.concatenate(results), expected)


@pytest.mark.parametrize("p", SIZES)
@pytest.mark.parametrize("algorithm", ["ring", "auto"])
def test_ring_allreduce_matches_reduce_bcast(run_ranks, p, algorithm):
    n = 64

    def program(env):
        world = yield from _world(env)
        contribution = np.linspace(0, 1, n) * (world.rank + 1)
        ring = yield from coll.allreduce(world, contribution, SUM,
                                         algorithm=algorithm)
        reference = yield from coll.allreduce(world, contribution, SUM,
                                              algorithm="reduce_bcast")
        return np.allclose(ring, reference)

    assert all(run_ranks(p, program))


def test_allreduce_rejects_unknown_algorithm(run_ranks):
    def program(env):
        world = yield from _world(env)
        with pytest.raises(ValueError):
            coll.iallreduce(world, np.zeros(4), algorithm="gossip")
        return True

    assert all(run_ranks(2, program))


def test_ring_allreduce_with_max_operator(run_ranks):
    p = 5
    n = 40

    def program(env):
        world = yield from _world(env)
        rng = np.random.default_rng(world.rank)
        contribution = rng.uniform(size=n)
        result = yield from coll.allreduce(world, contribution, MAX, algorithm="ring")
        return contribution, result

    results = run_ranks(p, program)
    expected = np.max(np.stack([c for c, _ in results]), axis=0)
    for _, result in results:
        assert np.allclose(result, expected)


@given(p=st.integers(min_value=1, max_value=10),
       n=st.integers(min_value=1, max_value=200))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_scatter_allgather_bcast_property(p, n):
    from repro.simulator import Cluster

    def program(env):
        world = yield from _world(env)
        value = np.arange(n, dtype=np.float64) if world.rank == 0 else None
        result = yield from coll.bcast(world, value, root=0,
                                       algorithm="scatter_allgather")
        return np.array_equal(result, np.arange(n, dtype=np.float64))

    assert all(Cluster(p).run(program).results)


# ---------------------------------------------------------------------------
# Cost shape: the large-input algorithms actually beat the binomial tree for
# long vectors (and lose for tiny ones) in simulated time.
# ---------------------------------------------------------------------------

def _timed_bcast_program(env, *, algorithm, words):
    world_mpi = init_mpi(env)
    world = yield from create_rbc_comm(world_mpi)
    yield from coll.barrier(world)
    value = np.zeros(words) if world.rank == 0 else None
    start = env.now
    yield from coll.bcast(world, value, root=0, algorithm=algorithm)
    return env.now - start


def _max_time(run_ranks, p, algorithm, words):
    durations = run_ranks(p, _timed_bcast_program,
                          rank_kwargs=[dict(algorithm=algorithm, words=words)] * p)
    return max(durations)


def test_scatter_allgather_wins_for_long_vectors(run_ranks):
    p = 16
    long_words = 1 << 16
    assert (_max_time(run_ranks, p, "scatter_allgather", long_words)
            < _max_time(run_ranks, p, "binomial", long_words))


def test_binomial_wins_for_short_vectors(run_ranks):
    p = 16
    short_words = 4
    assert (_max_time(run_ranks, p, "binomial", short_words)
            < _max_time(run_ranks, p, "scatter_allgather", short_words))


def test_pipeline_beats_binomial_for_long_vectors(run_ranks):
    p = 16
    long_words = 1 << 16
    assert (_max_time(run_ranks, p, "pipeline", long_words)
            < _max_time(run_ranks, p, "binomial", long_words))


def test_choose_algorithms_consult_cost_model():
    """``algorithm="auto"`` crossovers come from the machine's cost model."""
    from repro.simulator import HierarchicalParams, NetworkParams

    flat = NetworkParams.default()
    hier = HierarchicalParams()
    size = 64
    payload = np.zeros(LARGE_BCAST_THRESHOLD_WORDS)

    # Flat machines keep the historical fixed thresholds (schedule-compatible).
    assert flat.bcast_crossover_words(size) == LARGE_BCAST_THRESHOLD_WORDS
    assert (choose_bcast_algorithm(payload.size, size, payload, model=flat)
            == choose_bcast_algorithm(payload.size, size, payload))

    # Hierarchical machines derive a different (link-tier-based) crossover,
    # and the chooser honours it.
    crossover = hier.bcast_crossover_words(size)
    assert crossover != LARGE_BCAST_THRESHOLD_WORDS
    below = np.zeros(max(1, crossover - 1))
    above = np.zeros(crossover + 1)
    assert choose_bcast_algorithm(below.size, size, below, model=hier) == "binomial"
    assert (choose_bcast_algorithm(above.size, size, above, model=hier)
            == "scatter_allgather")

    ring_crossover = hier.allreduce_crossover_words(size)
    below = np.zeros(max(1, ring_crossover - 1))
    above = np.zeros(ring_crossover + 1)
    assert (choose_allreduce_algorithm(below.size, size, below, model=hier)
            == "reduce_bcast")
    assert choose_allreduce_algorithm(above.size, size, above, model=hier) == "ring"
