"""Correctness tests of the collective state machines over the simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.endpoint import TransportEndpoint
from repro.collectives.machines import (
    CollectiveRequest,
    allgather_schedule,
    allreduce_schedule,
    alltoallv_schedule,
    barrier_schedule,
    bcast_schedule,
    exscan_schedule,
    gather_schedule,
    reduce_schedule,
    scan_schedule,
)
from repro.mpi.datatypes import MAX, SUM
from repro.simulator import Cluster


def _endpoint(env, tag=0, word_cost_factor=1.0, per_message_delay=0.0):
    return TransportEndpoint(
        env, env.transport, context="coll-test", tag=tag,
        rank=env.rank, size=env.size, to_world=lambda r: r,
        word_cost_factor=word_cost_factor, per_message_delay=per_message_delay,
    )


def _run(p, schedule_factory):
    """Run a schedule on every rank (driven via CollectiveRequest); return results."""

    def program(env):
        request = CollectiveRequest(env, schedule_factory(_endpoint(env), env))
        yield from env.wait_until(request.test)
        return request.result()

    return Cluster(p).run(program).results


SIZES = [1, 2, 3, 4, 5, 7, 8, 13, 16, 31]


@pytest.mark.parametrize("p", SIZES)
def test_bcast_delivers_root_value(p):
    root = p // 2
    results = _run(p, lambda ep, env: bcast_schedule(
        ep, f"payload-{env.rank}" if env.rank == root else None, root))
    assert results == [f"payload-{root}"] * p


@pytest.mark.parametrize("p", SIZES)
def test_reduce_sums_at_root(p):
    root = p - 1
    results = _run(p, lambda ep, env: reduce_schedule(ep, env.rank + 1, SUM, root))
    expected = p * (p + 1) // 2
    for rank, value in enumerate(results):
        if rank == root:
            assert value == expected
        else:
            assert value is None


@pytest.mark.parametrize("p", SIZES)
def test_reduce_with_max_operator(p):
    results = _run(p, lambda ep, env: reduce_schedule(ep, (env.rank * 7) % p, MAX, 0))
    assert results[0] == max((r * 7) % p for r in range(p))


@pytest.mark.parametrize("p", SIZES)
def test_scan_inclusive_prefix(p):
    results = _run(p, lambda ep, env: scan_schedule(ep, env.rank + 1, SUM))
    assert results == [(r + 1) * (r + 2) // 2 for r in range(p)]


def test_scan_non_commutative_operator_preserves_order():
    # String concatenation is associative but not commutative.
    concat = lambda a, b: a + b
    results = _run(9, lambda ep, env: scan_schedule(ep, chr(ord("a") + env.rank), concat))
    assert results == ["abcdefghi"[:r + 1] for r in range(9)]


@pytest.mark.parametrize("p", SIZES)
def test_exscan_exclusive_prefix(p):
    results = _run(p, lambda ep, env: exscan_schedule(ep, env.rank + 1, SUM))
    assert results[0] is None
    for rank in range(1, p):
        assert results[rank] == rank * (rank + 1) // 2


@pytest.mark.parametrize("p", SIZES)
def test_gather_collects_in_rank_order(p):
    root = p // 3
    results = _run(p, lambda ep, env: gather_schedule(ep, env.rank * 10, root))
    assert results[root] == [r * 10 for r in range(p)]
    for rank in range(p):
        if rank != root:
            assert results[rank] is None


def test_gather_supports_variable_sizes():
    p = 6
    results = _run(p, lambda ep, env: gather_schedule(
        ep, np.arange(env.rank, dtype=np.int64), 0))
    gathered = results[0]
    assert [chunk.size for chunk in gathered] == list(range(p))


@pytest.mark.parametrize("p", SIZES)
def test_barrier_completes_everywhere(p):
    results = _run(p, lambda ep, env: barrier_schedule(ep))
    assert results == [None] * p


def test_barrier_synchronises_late_arrivals():
    """No rank may leave the barrier before the latest rank entered it."""
    entry_time = 50.0

    def program(env):
        if env.rank == 3:
            yield from env.sleep(entry_time)
        request = CollectiveRequest(env, barrier_schedule(_endpoint(env)))
        yield from env.wait_until(request.test)
        return env.now

    results = Cluster(8).run(program).results
    assert all(t >= entry_time for t in results)


@pytest.mark.parametrize("p", SIZES)
def test_allgather_everyone_gets_everything(p):
    results = _run(p, lambda ep, env: allgather_schedule(ep, env.rank ** 2))
    for value in results:
        assert value == [r ** 2 for r in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_everyone_gets_sum(p):
    results = _run(p, lambda ep, env: allreduce_schedule(ep, env.rank, SUM))
    assert results == [p * (p - 1) // 2] * p


def test_allreduce_on_numpy_arrays():
    p = 7
    results = _run(p, lambda ep, env: allreduce_schedule(
        ep, np.full(3, float(env.rank)), SUM))
    for value in results:
        np.testing.assert_allclose(value, np.full(3, p * (p - 1) / 2))


@pytest.mark.parametrize("p", [1, 2, 3, 5, 8, 12])
def test_alltoallv_routes_every_payload(p):
    results = _run(p, lambda ep, env: alltoallv_schedule(
        ep, [f"{env.rank}->{dest}" for dest in range(p)]))
    for rank, received in enumerate(results):
        assert received == [f"{src}->{rank}" for src in range(p)]


def test_alltoallv_wrong_payload_count_rejected():
    def program(env):
        ep = _endpoint(env)
        with pytest.raises(ValueError):
            CollectiveRequest(env, alltoallv_schedule(ep, ["only-one"]))
        yield from env.sleep(0.0)

    Cluster(3).run(program)


def test_first_state_executes_eagerly():
    """Creating the request must already post the root's sends (paper V-D)."""

    def program(env):
        ep = _endpoint(env)
        if env.rank == 0:
            CollectiveRequest(env, bcast_schedule(ep, "x", 0))
            # Without any further test() calls the message should already be
            # on the wire: rank 1 can receive it.
            yield from env.sleep(100.0)
            return None
        request = CollectiveRequest(env, bcast_schedule(ep, None, 0))
        yield from env.wait_until(request.test)
        return request.result()

    results = Cluster(2).run(program).results
    assert results[1] == "x"


def test_consecutive_collectives_on_same_tag_do_not_mix():
    """FIFO per (src, dst) keeps back-to-back collectives with the same tag apart."""

    def program(env):
        ep = _endpoint(env, tag=4)
        first = CollectiveRequest(env, scan_schedule(ep, env.rank, SUM))
        yield from env.wait_until(first.test)
        ep2 = _endpoint(env, tag=4)
        second = CollectiveRequest(env, scan_schedule(ep2, 100 * env.rank, SUM))
        yield from env.wait_until(second.test)
        return first.result(), second.result()

    p = 9
    results = Cluster(p).run(program).results
    for rank, (a, b) in enumerate(results):
        assert a == rank * (rank + 1) // 2
        assert b == 100 * rank * (rank + 1) // 2


def test_word_cost_factor_slows_down_but_keeps_result():
    def run_with(factor):
        def program(env):
            ep = _endpoint(env, word_cost_factor=factor)
            request = CollectiveRequest(
                env, bcast_schedule(ep, np.zeros(1000) if env.rank == 0 else None, 0))
            yield from env.wait_until(request.test)
            return env.now

        return max(Cluster(8).run(program).results)

    assert run_with(10.0) > run_with(1.0) * 2


def test_per_message_delay_increases_runtime():
    def run_with(delay):
        def program(env):
            ep = _endpoint(env, per_message_delay=delay)
            request = CollectiveRequest(env, barrier_schedule(ep))
            yield from env.wait_until(request.test)
            return env.now

        return max(Cluster(8).run(program).results)

    assert run_with(50.0) > run_with(0.0) + 50.0


@given(st.integers(min_value=1, max_value=40), st.integers(min_value=0, max_value=39))
@settings(max_examples=25, deadline=None)
def test_property_bcast_and_reduce_agree_for_any_root(p, root_raw):
    root = root_raw % p
    bcast_results = _run(p, lambda ep, env: bcast_schedule(
        ep, env.rank if env.rank == root else None, root))
    assert bcast_results == [root] * p
    reduce_results = _run(p, lambda ep, env: reduce_schedule(ep, 1, SUM, root))
    assert reduce_results[root] == p
