"""Message-count invariants of the collective algorithms.

The trace statistics of the simulator count every message the transport
carries, so the communication volume of each algorithm can be checked exactly:
binomial trees send one message per non-root rank, dissemination patterns send
one message per rank per round, ring algorithms send one message per rank per
step.  These invariants pin down the cost model the benchmarks rely on.
"""

import numpy as np
import pytest

from repro.collectives.topology import ceil_log2, dissemination_rounds
from repro.mpi import SUM, init_mpi
from repro.rbc import collectives as coll
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster


def _messages_for(p, body):
    """Run ``body(world)`` (a generator taking the RBC world) on p ranks and
    return the total number of messages sent."""

    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        yield from body(env, world)
        return None

    result = Cluster(p).run(program)
    return result.stats.messages_sent, result.stats


SIZES = [2, 3, 5, 8, 13, 16]


@pytest.mark.parametrize("p", SIZES)
def test_binomial_bcast_sends_p_minus_one_messages(p):
    def body(env, world):
        yield from coll.bcast(world, 1.0 if world.rank == 0 else None, 0)

    messages, stats = _messages_for(p, body)
    assert messages == p - 1
    # No rank sends more than its binomial-tree degree (<= ceil(log2 p)).
    assert stats.max_messages_sent() <= ceil_log2(p)


@pytest.mark.parametrize("p", SIZES)
def test_binomial_reduce_and_gather_send_p_minus_one_messages(p):
    def body(env, world):
        yield from coll.reduce(world, 1.0, SUM, root=0)
        yield from coll.gather(world, world.rank, root=p - 1)

    messages, _ = _messages_for(p, body)
    assert messages == 2 * (p - 1)


@pytest.mark.parametrize("p", SIZES)
def test_scatter_sends_p_minus_one_messages(p):
    def body(env, world):
        values = list(range(p)) if world.rank == 0 else None
        yield from coll.scatter(world, values, root=0)

    messages, _ = _messages_for(p, body)
    assert messages == p - 1


@pytest.mark.parametrize("p", SIZES)
def test_dissemination_barrier_message_count(p):
    def body(env, world):
        yield from coll.barrier(world)

    messages, _ = _messages_for(p, body)
    assert messages == p * len(dissemination_rounds(p))


@pytest.mark.parametrize("p", SIZES)
def test_ring_allgather_sends_p_times_p_minus_one_messages(p):
    def body(env, world):
        yield from coll.allgatherv(world, float(world.rank))

    messages, stats = _messages_for(p, body)
    assert messages == p * (p - 1)
    assert stats.max_messages_sent() == p - 1


@pytest.mark.parametrize("p", SIZES)
def test_ring_reduce_scatter_message_count(p):
    def body(env, world):
        yield from coll.reduce_scatter(world, np.ones(4 * p), SUM)

    messages, _ = _messages_for(p, body)
    assert messages == p * (p - 1)


@pytest.mark.parametrize("p", SIZES)
def test_alltoallv_sends_a_full_square(p):
    def body(env, world):
        payloads = [np.zeros(1) for _ in range(p)]
        yield from coll.alltoallv(world, payloads)

    messages, _ = _messages_for(p, body)
    assert messages == p * (p - 1)


@pytest.mark.parametrize("p", SIZES)
def test_scatter_allgather_bcast_message_count(p):
    def body(env, world):
        value = np.zeros(64 * p) if world.rank == 0 else None
        yield from coll.bcast(world, value, root=0, algorithm="scatter_allgather")

    messages, _ = _messages_for(p, body)
    # Binomial scatter (p - 1) followed by a ring allgather (p * (p - 1)).
    assert messages == (p - 1) + p * (p - 1)


def test_pipeline_bcast_message_count():
    p = 6
    segments = 8

    def body(env, world):
        value = np.zeros(segments * 32) if world.rank == 0 else None
        yield from coll.bcast(world, value, root=0, algorithm="pipeline",
                              segment_words=32)

    messages, _ = _messages_for(p, body)
    # Every chain edge (p - 1 of them) carries every segment exactly once.
    assert messages == (p - 1) * segments


@pytest.mark.parametrize("p", SIZES)
def test_bcast_word_volume_is_tree_edges_times_payload(p):
    words = 50

    def body(env, world):
        value = np.zeros(words) if world.rank == 0 else None
        yield from coll.bcast(world, value, root=0)

    def run(body):
        def program(env):
            world_mpi = init_mpi(env)
            world = yield from create_rbc_comm(world_mpi)
            yield from body(env, world)

        return Cluster(p).run(program).stats

    stats = run(body)
    assert stats.words_sent == (p - 1) * words


def test_ring_allreduce_moves_less_data_per_rank_than_reduce_bcast():
    """The ring allreduce is bandwidth-optimal: the busiest rank sends about
    2n(p-1)/p words, whereas with reduce+bcast the root forwards ~n log p."""
    p = 8
    words = 4096

    def run(algorithm):
        def program(env):
            world_mpi = init_mpi(env)
            world = yield from create_rbc_comm(world_mpi)
            yield from coll.allreduce(world, np.ones(words), SUM,
                                      algorithm=algorithm)

        return Cluster(p).run(program).stats

    ring = run("ring")
    tree = run("reduce_bcast")
    assert max(ring.per_rank_words_sent) < max(tree.per_rank_words_sent)
