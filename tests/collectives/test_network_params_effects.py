"""The collective algorithms respond to the machine parameters as the α–β
model predicts: latency-bound machines favour the binomial trees, bandwidth-
bound machines favour the bandwidth-optimal algorithms, and the crossover
point moves accordingly."""

import numpy as np

from repro.mpi import SUM, init_mpi
from repro.rbc import collectives as coll
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster, NetworkParams


def _time_collective(p, params, operation, algorithm, words):
    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        yield from coll.barrier(world)
        start = env.now
        if operation == "bcast":
            payload = np.zeros(words) if world.rank == 0 else None
            yield from coll.bcast(world, payload, root=0, algorithm=algorithm)
        else:
            yield from coll.allreduce(world, np.zeros(words), SUM,
                                      algorithm=algorithm)
        return env.now - start

    result = Cluster(p, params).run(program)
    return max(result.results)


def test_latency_bound_machine_prefers_binomial_bcast_longer():
    """On a latency-bound machine the binomial tree stays ahead up to larger
    payloads than on a bandwidth-bound machine."""
    p = 16
    words = 8192
    latency = NetworkParams.latency_bound()
    bandwidth = NetworkParams.bandwidth_bound()

    # Bandwidth-bound machine: scatter-allgather already wins at this size.
    assert (_time_collective(p, bandwidth, "bcast", "scatter_allgather", words)
            < _time_collective(p, bandwidth, "bcast", "binomial", words))
    # Latency-bound machine: the binomial tree still wins at the same size.
    assert (_time_collective(p, latency, "bcast", "binomial", words)
            < _time_collective(p, latency, "bcast", "scatter_allgather", words))


def test_ring_allreduce_advantage_grows_with_beta():
    p = 8
    words = 16384
    default = NetworkParams.default()
    bandwidth = NetworkParams.bandwidth_bound()

    def advantage(params):
        tree = _time_collective(p, params, "allreduce", "reduce_bcast", words)
        ring = _time_collective(p, params, "allreduce", "ring", words)
        return tree / ring

    assert advantage(bandwidth) > advantage(default)


def test_alpha_only_scaling_of_small_collectives():
    """For a one-word broadcast the running time scales with alpha (the beta
    and gamma terms are negligible), so doubling alpha roughly doubles it."""
    p = 32
    base = NetworkParams(alpha=5.0, beta=0.002, gamma=0.002)
    doubled = NetworkParams(alpha=10.0, beta=0.002, gamma=0.002)
    t_base = _time_collective(p, base, "bcast", "binomial", 1)
    t_doubled = _time_collective(p, doubled, "bcast", "binomial", 1)
    assert 1.8 <= t_doubled / t_base <= 2.2


def test_message_cost_formula():
    params = NetworkParams(alpha=7.0, beta=0.01, gamma=0.001)
    assert params.message_cost(0) == 7.0
    assert params.message_cost(1000) == 7.0 + 10.0
    assert params.compute_cost(500) == 0.5
