"""Property-based and unit tests of the binomial-tree / dissemination helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.topology import (
    binomial_children,
    binomial_parent,
    ceil_log2,
    dissemination_rounds,
    from_virtual,
    to_virtual,
)


def test_ceil_log2_small_values():
    assert ceil_log2(0) == 0
    assert ceil_log2(1) == 0
    assert ceil_log2(2) == 1
    assert ceil_log2(3) == 2
    assert ceil_log2(4) == 2
    assert ceil_log2(5) == 3
    assert ceil_log2(1024) == 10
    assert ceil_log2(1025) == 11


@given(st.integers(min_value=1, max_value=1 << 20))
def test_ceil_log2_bound(n):
    k = ceil_log2(n)
    assert 2 ** k >= n
    assert k == 0 or 2 ** (k - 1) < n


def test_binomial_parent_of_root_is_none():
    assert binomial_parent(0) is None


def test_binomial_children_known_tree_size8():
    assert sorted(binomial_children(0, 8)) == [1, 2, 4]
    assert sorted(binomial_children(4, 8)) == [5, 6]
    assert sorted(binomial_children(2, 8)) == [3]
    assert binomial_children(1, 8) == []
    assert binomial_children(7, 8) == []


def test_binomial_children_sorted_by_decreasing_subtree():
    # The root should send to the largest subtree first.
    assert binomial_children(0, 8) == [4, 2, 1]


@given(st.integers(min_value=1, max_value=300))
@settings(max_examples=60)
def test_binomial_tree_is_consistent(size):
    """Parent/children relations agree and the tree spans all virtual ranks."""
    reached = {0}
    for vrank in range(size):
        for child in binomial_children(vrank, size):
            assert 0 <= child < size
            assert binomial_parent(child) == vrank
            assert child not in reached
            reached.add(child)
    assert reached == set(range(size))


@given(st.integers(min_value=2, max_value=300))
@settings(max_examples=60)
def test_binomial_tree_depth_is_logarithmic(size):
    def depth(vrank):
        steps = 0
        while vrank != 0:
            vrank = binomial_parent(vrank)
            steps += 1
        return steps

    assert max(depth(v) for v in range(size)) <= ceil_log2(size)


def test_dissemination_rounds_powers_of_two():
    assert dissemination_rounds(1) == []
    assert dissemination_rounds(2) == [1]
    assert dissemination_rounds(5) == [1, 2, 4]
    assert dissemination_rounds(8) == [1, 2, 4]
    assert dissemination_rounds(9) == [1, 2, 4, 8]


@given(st.integers(min_value=1, max_value=10_000))
def test_dissemination_rounds_cover_all_distances(size):
    rounds = dissemination_rounds(size)
    assert sum(rounds) >= size - 1
    assert all(b == 2 * a for a, b in zip(rounds, rounds[1:]))


@given(st.integers(min_value=1, max_value=200), st.data())
def test_virtual_rank_round_trip(size, data):
    root = data.draw(st.integers(min_value=0, max_value=size - 1))
    rank = data.draw(st.integers(min_value=0, max_value=size - 1))
    vrank = to_virtual(rank, root, size)
    assert 0 <= vrank < size
    assert from_virtual(vrank, root, size) == rank
    assert to_virtual(root, root, size) == 0
