"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import Cluster, NetworkParams


@pytest.fixture
def run_ranks():
    """Run a rank program on a fresh simulated cluster and return the results.

    Usage::

        def test_x(run_ranks):
            def program(env):
                ...
                yield from ...
                return value
            results = run_ranks(8, program)
    """

    def runner(num_ranks, program, *args, params=None, rank_kwargs=None, **kwargs):
        cluster = Cluster(num_ranks, params)
        result = cluster.run(program, *args, rank_kwargs=rank_kwargs, **kwargs)
        return result.results

    return runner


@pytest.fixture
def run_cluster():
    """Like ``run_ranks`` but returns the full :class:`ClusterResult`."""

    def runner(num_ranks, program, *args, params=None, rank_kwargs=None, **kwargs):
        cluster = Cluster(num_ranks, params)
        return cluster.run(program, *args, rank_kwargs=rank_kwargs, **kwargs)

    return runner


@pytest.fixture
def balanced_input():
    """Generate a balanced per-rank input layout from a global array."""

    def make(n, p, seed=0, kind="uniform"):
        from repro.bench.workloads import generate
        return generate(kind, n, p, seed=seed)

    return make
