"""Differential tests for the lockstep fast-forward tier.

:mod:`repro.core.spmd` carries a second, vectorised pricer for barrier and
scan phases: instead of advancing a frontier rank by rank, whole collective
rounds are priced with numpy once every member has joined.  Its contract is
the same as lockstep's own — *bit-identical or refuse*: with
``env.lockstep_fastforward`` on or off, every observable of a simulation
(finish times, results, simulated time, tracer statistics, port logs' effect
on later phases) must match exactly, and workloads lockstep refuses must be
refused by both tiers with the same :class:`~repro.core.spmd.LockstepError`.
"""

import numpy as np
import pytest

from repro.core import spmd
from repro.mpi import init_mpi
from repro.mpi.datatypes import MAX, MIN, PROD, SUM
from repro.rbc import collectives as rbc
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.simulator.errors import RankFailedError


def _observables(result):
    return (
        result.total_time,
        tuple(result.finish_times),
        tuple(result.results),
        result.stats.messages_sent,
        result.stats.words_sent,
        tuple(result.stats.per_rank_messages_sent),
        tuple(result.stats.per_rank_messages_received),
    )


def _collective_program(env, *, op, words, reps, fastforward, skew=0.0,
                        reduce_op=SUM, float_payload=False):
    """Barrier-separated collectives with optional per-rank join skew."""
    env.lockstep_collectives = True
    env.lockstep_fastforward = fastforward
    world_mpi = init_mpi(env, vendor="generic")
    world_rbc = yield from create_rbc_comm(world_mpi)
    if float_payload:
        payload = float(env.rank + 1)
    elif words:
        payload = np.ones(words) * (env.rank + 1)
    else:
        payload = np.zeros(0)
    digests = []
    for _ in range(reps):
        yield from rbc.barrier(world_rbc)
        if skew:
            # Unequal compute before the join: ranks enter the phase at
            # genuinely different virtual times, so the vectorised pricer
            # sees non-uniform resume/port state.
            yield from env.compute_time(skew * ((env.rank * 7) % 5))
        if op == "barrier":
            request = rbc.ibarrier(world_rbc)
        elif op == "scan":
            request = rbc.iscan(world_rbc, payload, reduce_op)
        else:
            raise AssertionError(op)
        yield from env.wait_until(request.test)
        value = request.result()
        digests.append(None if value is None else float(np.sum(value)))
    return (env.now, tuple(digests))


def _run(num_ranks, **kwargs):
    return Cluster(num_ranks).run(_collective_program, **kwargs)


@pytest.mark.parametrize("op", ["barrier", "scan"])
@pytest.mark.parametrize("num_ranks", [2, 3, 7, 16, 31, 64])
def test_fastforward_bit_identical(op, num_ranks):
    scalar = _run(num_ranks, op=op, words=4, reps=3, fastforward=False)
    vector = _run(num_ranks, op=op, words=4, reps=3, fastforward=True)
    assert _observables(scalar) == _observables(vector)


@pytest.mark.parametrize("num_ranks", [5, 8, 31, 64])
def test_fastforward_bit_identical_under_join_skew(num_ranks):
    """Skewed joins force the out-of-order guard: rounds whose posts would
    land behind a port log tail must fall back to the scalar frontier with
    zero mutation, keeping both tiers exactly equal."""
    for op in ("barrier", "scan"):
        scalar = _run(num_ranks, op=op, words=2, reps=4, fastforward=False,
                      skew=0.37)
        vector = _run(num_ranks, op=op, words=2, reps=4, fastforward=True,
                      skew=0.37)
        assert _observables(scalar) == _observables(vector)


@pytest.mark.parametrize("reduce_op", [SUM, PROD, MIN, MAX])
def test_fastforward_scan_operators(reduce_op):
    """Array scans vectorise per operator; values and timing both match."""
    scalar = _run(13, op="scan", words=8, reps=2, fastforward=False,
                  reduce_op=reduce_op)
    vector = _run(13, op="scan", words=8, reps=2, fastforward=True,
                  reduce_op=reduce_op)
    assert _observables(scalar) == _observables(vector)


def test_fastforward_float_scan():
    """Plain-float payloads take the float vector plan (SUM/PROD only)."""
    for reduce_op in (SUM, PROD):
        scalar = _run(9, op="scan", words=0, reps=2, fastforward=False,
                      reduce_op=reduce_op, float_payload=True)
        vector = _run(9, op="scan", words=0, reps=2, fastforward=True,
                      reduce_op=reduce_op, float_payload=True)
        assert _observables(scalar) == _observables(vector)


def test_fastforward_scan_results_stay_writable_equivalently():
    """Ranks whose scalar-path result is a fresh accumulator must not get a
    frozen (read-only) array from the vector path, and vice versa."""

    def program(env, fastforward):
        env.lockstep_collectives = True
        env.lockstep_fastforward = fastforward
        world_mpi = init_mpi(env, vendor="generic")
        world_rbc = yield from create_rbc_comm(world_mpi)
        yield from rbc.barrier(world_rbc)
        request = rbc.iscan(world_rbc, np.ones(4) * (env.rank + 1))
        yield from env.wait_until(request.test)
        value = request.result()
        return bool(np.asarray(value).flags.writeable)

    for p in (2, 3, 4, 8, 11, 16):
        scalar = Cluster(p).run(program, fastforward=False)
        vector = Cluster(p).run(program, fastforward=True)
        assert scalar.results == vector.results, p


def test_fastforward_preserves_lockstep_refusal():
    """The workload lockstep must refuse (receive-port contention across
    overlapping gather phases) is refused identically with the fast-forward
    tier armed — the tier's log entries feed the same contention detector."""

    def program(env, fastforward):
        env.lockstep_collectives = True
        env.lockstep_fastforward = fastforward
        world_mpi = init_mpi(env, vendor="generic")
        world_rbc = yield from create_rbc_comm(world_mpi)
        yield from rbc.barrier(world_rbc)
        for _ in range(2):
            request = rbc.igather(world_rbc, np.ones(8), root=0)
            yield from env.wait_until(request.test)

    for fastforward in (False, True):
        with pytest.raises(RankFailedError) as info:
            Cluster(7).run(program, fastforward=fastforward)
        assert isinstance(info.value.__cause__, spmd.LockstepError)
        assert "receive-port contention" in str(info.value.__cause__)


def test_fastforward_never_processes_more_events():
    """Flush fusion may reduce the event count but must never inflate it."""
    scalar = _run(32, op="scan", words=4, reps=3, fastforward=False)
    vector = _run(32, op="scan", words=4, reps=3, fastforward=True)
    assert vector.events_processed <= scalar.events_processed
