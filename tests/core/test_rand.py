"""Property tests of the stateless counter-based sampler (repro.core.rand)."""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import rand

ints64 = st.integers(min_value=-(2 ** 63), max_value=2 ** 64 - 1)


# ---------------------------------------------------------------------- mix64


def test_mix64_matches_reference_vectors():
    # Published splitmix64 test vectors (Vigna's reference C implementation,
    # seed 1234567): output i is mix64(seed + (i + 1) * GOLDEN).
    state = 1234567
    expected = [6457827717110365317, 3203168211198807973, 9817491932198370423]
    for want in expected:
        state = (state + rand._GOLDEN) & 0xFFFFFFFFFFFFFFFF
        assert rand.mix64(state) == want
    assert rand.mix64(0) == 0
    # mix64 is a bijection on 64-bit ints: distinct small inputs stay distinct.
    outputs = {rand.mix64(i) for i in range(1000)}
    assert len(outputs) == 1000


@given(ints64)
def test_mix64_stays_in_64_bits(z):
    assert 0 <= rand.mix64(z) < 2 ** 64


# ------------------------------------------------------------------ derive_key


@given(st.lists(ints64, min_size=0, max_size=6))
def test_derive_key_deterministic_and_64_bit(words):
    key = rand.derive_key(*words)
    assert key == rand.derive_key(*words)
    assert 0 <= key < 2 ** 64


def test_derive_key_order_sensitive():
    assert rand.derive_key(1, 2) != rand.derive_key(2, 1)


@given(st.integers(0, 2 ** 32), st.integers(0, 2 ** 20), st.integers(0, 2 ** 20),
       st.integers(0, 300), st.integers(0, 2 ** 15))
def test_sample_key_deterministic(seed, lo, hi, level, rank):
    key = rand.sample_key(seed, lo, hi, level, rank)
    assert key == rand.sample_key(seed, lo, hi, level, rank)
    assert 0 <= key < 2 ** 64


def test_sample_key_separates_neighbouring_tasks():
    keys = {rand.sample_key(7, lo, hi, level, rank)
            for lo in range(4) for hi in range(4, 8)
            for level in range(4) for rank in range(4)}
    assert len(keys) == 4 * 4 * 4 * 4


# -------------------------------------------------------------- sample_indices


@given(st.integers(0, 2 ** 64 - 1), st.integers(0, 64), st.integers(1, 10 ** 6))
def test_sample_indices_in_range_and_deterministic(key, count, size):
    indices = rand.sample_indices(key, count, size)
    assert indices.dtype == np.int64
    assert indices.shape == (max(0, count),)
    assert np.array_equal(indices, rand.sample_indices(key, count, size))
    if count:
        assert int(indices.min()) >= 0
        assert int(indices.max()) < size


def test_sample_indices_empty_cases():
    assert rand.sample_indices(1, 0, 10).size == 0
    assert rand.sample_indices(1, -3, 10).size == 0
    assert rand.sample_indices(1, 5, 0).size == 0


@given(st.integers(0, 2 ** 64 - 1), st.integers(1, 200), st.integers(1, 10 ** 9))
def test_scalar_and_vector_tiers_agree(key, count, size):
    """The ≤4-draw scalar loop and the vectorised path are bit-identical."""
    vector = rand.sample_indices(key, count, size)
    scalar = np.array(
        [rand.mix64(key + (i + 1) * rand._GOLDEN) % size for i in range(count)],
        dtype=np.int64)
    assert np.array_equal(vector, scalar)


@pytest.mark.parametrize("count", [rand._SCALAR_DRAWS - 1, rand._SCALAR_DRAWS,
                                   rand._SCALAR_DRAWS + 1])
def test_tier_boundary_bit_identical(count, monkeypatch):
    """Differential test exactly at the scalar-tier boundary (3/4/5 draws).

    Counts of 3 and 4 take the inlined scalar loop, 5 the uint64 vector
    path; forcing the cutoff to 0 re-runs the same ``(key, count, size)`` on
    the vector implementation, which must be bit-identical — including sizes
    near 2**63 where a signed modulo would diverge from the uint64 one.
    """
    for key in (0, 1, 2 ** 64 - 1, rand.derive_key(17, count),
                rand.sample_key(5, 0, 97, 3, 1)):
        for size in (1, 2, 3, 64, 2 ** 31 - 1, 2 ** 62 + 11):
            native = rand.sample_indices(key, count, size)
            with monkeypatch.context() as patch:
                patch.setattr(rand, "_SCALAR_DRAWS", 0)
                vector = rand.sample_indices(key, count, size)
            assert native.dtype == vector.dtype == np.int64
            assert np.array_equal(native, vector), (key, count, size)


def test_prefix_property():
    """Index i of a stream does not depend on how many draws were requested."""
    key = rand.derive_key(42, 7)
    long = rand.sample_indices(key, 100, 1000)
    for count in (1, 2, 4, 5, 17, 99):
        assert np.array_equal(rand.sample_indices(key, count, 1000), long[:count])


@settings(deadline=None)
@given(st.integers(0, 2 ** 32))
def test_rough_uniformity(seed):
    """Bucket counts of 4096 draws over 16 buckets stay within loose bounds."""
    indices = rand.sample_indices(rand.derive_key(seed), 4096, 16)
    counts = np.bincount(indices, minlength=16)
    # Expected 256 per bucket; allow generous +-60% so the test never flakes
    # while still catching a broken mixer (which collapses to a few buckets).
    assert int(counts.min()) > 100
    assert int(counts.max()) < 420


def test_determinism_across_process_restarts():
    """The stream depends only on explicit integers — not interpreter state."""
    code = (
        "from repro.core import rand;"
        "print(rand.sample_indices(rand.sample_key(3, 10, 99, 2, 5), 8, 97).tolist())"
    )
    outputs = set()
    for _ in range(2):
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True)
        outputs.add(result.stdout.strip())
    assert len(outputs) == 1
    here = rand.sample_indices(rand.sample_key(3, 10, 99, 2, 5), 8, 97).tolist()
    assert outputs == {str(here)}
