"""Differential tests for SPMD lockstep collective pricing.

:mod:`repro.core.spmd` prices a whole collective phase analytically — one
closed-form pass over the group instead of one simulated event per message —
and posts a single fused wake-up per phase timestamp.  Its contract is that
for collectives entered from a common phase the pricing is *bit-identical*
to the event-by-event schedules: same finish times, same results, same
simulated time, same tracer statistics.  These tests prove that by running
identical programs with lockstep on and off and comparing every observable.
"""

import numpy as np
import pytest

from repro.core import spmd
from repro.mpi import init_mpi
from repro.mpi.datatypes import SUM
from repro.rbc import collectives as rbc
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.simulator.costmodel import HierarchicalParams
from repro.simulator.errors import RankFailedError

#: Lockstep phase kinds this module covers differentially (scanned by
#: ``benchmarks/check_lockstep_registry.py``).
COVERS_KINDS = ("bcast", "reduce", "allreduce", "scan", "gather", "barrier")

OPS = ("bcast", "reduce", "scan", "gather", "allreduce", "barrier")


def _collective_loop(env, *, op, impl, words, reps, lockstep, root=0,
                     vendor="generic"):
    """Rank program: barrier, then ``reps`` back-to-back collectives.

    Returns (duration, per-repetition result digests) so value equality is
    asserted alongside the timing.
    """
    env.lockstep_collectives = lockstep
    world_mpi = init_mpi(env, vendor=vendor)
    world_rbc = yield from create_rbc_comm(world_mpi)
    payload = (np.ones(words) * (env.rank + 1)) if words else np.zeros(0)
    yield from rbc.barrier(world_rbc)
    start = env.now
    digests = []
    for _ in range(reps):
        if impl == "rbc":
            request = {
                "bcast": lambda: rbc.ibcast(
                    world_rbc, payload if env.rank == root else None, root),
                "reduce": lambda: rbc.ireduce(world_rbc, payload, root=root),
                "scan": lambda: rbc.iscan(world_rbc, payload),
                "gather": lambda: rbc.igather(world_rbc, payload, root=root),
                "allreduce": lambda: rbc.iallreduce(world_rbc, payload),
                "barrier": lambda: rbc.ibarrier(world_rbc),
            }[op]()
        else:
            request = {
                "bcast": lambda: world_mpi.ibcast(
                    payload if env.rank == root else None, root),
                "reduce": lambda: world_mpi.ireduce(payload, root=root),
                "scan": lambda: world_mpi.iscan(payload),
                "gather": lambda: world_mpi.igather(payload, root=root),
                "allreduce": lambda: world_mpi.iallreduce(payload),
                "barrier": lambda: world_mpi.ibarrier(),
            }[op]()
        yield from env.wait_until(request.test)
        value = request.result()
        if isinstance(value, list):
            digests.append(tuple(float(np.sum(part)) for part in value))
        elif value is not None:
            digests.append(float(np.sum(value)))
        else:
            digests.append(None)
    return (env.now - start, tuple(digests))


def _observables(result):
    return (
        result.total_time,
        tuple(result.finish_times),
        tuple(result.results),
        result.stats.messages_sent,
        result.stats.words_sent,
        tuple(result.stats.per_rank_messages_sent),
        tuple(result.stats.per_rank_messages_received),
        tuple(result.stats.per_rank_words_sent),
        tuple(result.stats.per_rank_words_received),
    )


def _run(num_ranks, *, reference=False, **kwargs):
    cluster = Cluster(num_ranks, reference_engine=reference)
    return cluster.run(_collective_loop, **kwargs)


@pytest.mark.parametrize("impl", ["rbc", "mpi"])
@pytest.mark.parametrize("op", OPS)
@pytest.mark.parametrize("num_ranks,root,words", [
    (5, 2, 0),    # non-power-of-two, rotated root, empty payload
    (7, 0, 8),    # non-power-of-two with two leaf children per parent
    (16, 15, 8),  # power of two, last-rank root
])
def test_lockstep_bit_identical_to_native(impl, op, num_ranks, root, words):
    """Lockstep either prices bit-identically or refuses honestly.

    Back-to-back repetitions can overlap phases in time on a receive port
    (a fast leaf's next-repetition send posts before the previous phase's
    deep-subtree traffic), in which case the native port interleaving
    cannot be mirrored by eager phase pricing; the coordinator must raise
    :class:`LockstepError` rather than diverge silently.  When that
    happens, the single-phase variant of the same configuration must
    still price exactly.
    """
    native = _run(num_ranks, op=op, impl=impl, words=words, reps=2,
                  lockstep=False, root=root)
    try:
        lockstep = _run(num_ranks, op=op, impl=impl, words=words, reps=2,
                        lockstep=True, root=root)
    except RankFailedError as failure:
        assert isinstance(failure.__cause__, spmd.LockstepError)
        assert "overlapping collective phases" in str(failure.__cause__)
        native_one = _run(num_ranks, op=op, impl=impl, words=words, reps=1,
                          lockstep=False, root=root)
        lockstep_one = _run(num_ranks, op=op, impl=impl, words=words,
                            reps=1, lockstep=True, root=root)
        assert _observables(native_one) == _observables(lockstep_one)
        return
    assert _observables(native) == _observables(lockstep)
    # Lockstep never processes *more* events than the per-message schedules.
    assert lockstep.events_processed <= native.events_processed


@pytest.mark.parametrize("impl", ["rbc", "mpi"])
@pytest.mark.parametrize("op", ["reduce", "allreduce", "scan"])
def test_lockstep_with_vendor_cost_factors(impl, op):
    """Vendors with word-cost factors / per-message overheads price equal."""
    native = _run(9, op=op, impl=impl, words=16, reps=2, lockstep=False,
                  vendor="intel")
    lockstep = _run(9, op=op, impl=impl, words=16, reps=2, lockstep=True,
                    vendor="intel")
    assert _observables(native) == _observables(lockstep)


@pytest.mark.parametrize("op", OPS)
def test_lockstep_identical_on_reference_core(op):
    """The fused wake-ups behave identically on both event cores."""
    fast = _run(8, reference=False, op=op, impl="rbc", words=4, reps=2,
                lockstep=True)
    slow = _run(8, reference=True, op=op, impl="rbc", words=4, reps=2,
                lockstep=True)
    assert _observables(fast) == _observables(slow)
    assert fast.events_processed == slow.events_processed


def test_lockstep_reduces_event_count():
    native = _run(16, op="scan", impl="rbc", words=8, reps=4, lockstep=False)
    lockstep = _run(16, op="scan", impl="rbc", words=8, reps=4, lockstep=True)
    assert _observables(native) == _observables(lockstep)
    assert lockstep.events_processed < native.events_processed / 2


def test_lockstep_requires_opt_in():
    """Without the env flag no coordinator is ever attached."""

    def program(env):
        world_mpi = init_mpi(env, vendor="generic")
        request = world_mpi.iallreduce(float(env.rank), SUM)
        yield from env.wait_until(request.test)
        return getattr(env.transport, "_spmd_coordinator", None)

    result = Cluster(4).run(program)
    assert all(coordinator is None for coordinator in result.results)


def test_lockstep_eligible_on_tiered_per_rank_port_machines():
    """Tiered link prices are priced per edge; results match the native run."""
    params = HierarchicalParams.default()

    def program(env, lockstep):
        if lockstep:
            env.lockstep_collectives = True
        world_mpi = init_mpi(env, vendor="generic")
        request = world_mpi.iallreduce(float(env.rank), SUM)
        yield from env.wait_until(request.test)
        return (float(request.result()), env.now,
                getattr(env.transport, "_spmd_coordinator", None) is not None)

    fused = Cluster(8, params).run(lambda env: program(env, True))
    native = Cluster(8, params).run(lambda env: program(env, False))
    assert [r[:2] for r in fused.results] == [r[:2] for r in native.results]
    assert all(used for _, _, used in fused.results)
    assert fused.events_processed < native.events_processed


def test_lockstep_not_eligible_on_shared_nic_machines():
    """Shared-NIC pools serialise on node ports the pricer does not mirror."""
    params = HierarchicalParams.supermuc_like(ranks_per_node=4,
                                              ports_per_node=1)

    def program(env):
        env.lockstep_collectives = True
        world_mpi = init_mpi(env, vendor="generic")
        request = world_mpi.iallreduce(float(env.rank), SUM)
        yield from env.wait_until(request.test)
        return (float(request.result()),
                getattr(env.transport, "_spmd_coordinator", None) is None)

    result = Cluster(8, params).run(program)
    values = [value for value, _ in result.results]
    assert values == [sum(range(8))] * 8
    assert all(no_coordinator for _, no_coordinator in result.results)


def test_lockstep_rejects_mismatched_operator():
    def program(env):
        env.lockstep_collectives = True
        world_mpi = init_mpi(env, vendor="generic")
        op = SUM if env.rank == 0 else (lambda a, b: a + b)
        request = world_mpi.iallreduce(float(env.rank), op)
        yield from env.wait_until(request.test)

    with pytest.raises(Exception, match="different reduction operator"):
        Cluster(2).run(program)


def test_lockstep_refuses_overlapping_phase_contention():
    """Phase overlap on a receive port refuses instead of mispricing.

    At p=7, words=8 the second gather's fastest leaf posts into the root's
    receive port *before* the first gather's deepest subtree send; the
    native engine folds receive-port writes in global post order, which
    eager phase pricing cannot reproduce once the first phase's entry has
    been committed.  The coordinator's cross-phase port log must detect
    the contention and raise rather than silently diverge.
    """
    with pytest.raises(RankFailedError) as info:
        _run(7, op="gather", impl="rbc", words=8, reps=2, lockstep=True)
    assert isinstance(info.value.__cause__, spmd.LockstepError)
    assert "receive-port contention" in str(info.value.__cause__)


def test_coordinator_tracks_generations():
    """Ranks priced early may start the next repetition before the current
    phase fully resolves (RBC reuses one tag across repetitions)."""

    def program(env):
        env.lockstep_collectives = True
        world_mpi = init_mpi(env, vendor="generic")
        world_rbc = yield from create_rbc_comm(world_mpi)
        total = 0.0
        for _ in range(5):
            request = rbc.ireduce(world_rbc, float(env.rank + 1), root=0)
            yield from env.wait_until(request.test)
            if env.rank == 0:
                total += float(request.result())
        return total

    result = Cluster(8).run(program)
    assert result.results[0] == 5 * sum(range(1, 9))
    # All generations retired: no phase left behind on the coordinator.
    # (The coordinator object itself stays attached to the transport.)


def test_lockstep_request_interface():
    def program(env):
        env.lockstep_collectives = True
        world_mpi = init_mpi(env, vendor="generic")
        request = world_mpi.iallreduce(float(env.rank), SUM)
        assert isinstance(request, spmd.LockstepRequest)
        value = yield from request.wait()
        assert request.done
        return float(value)

    result = Cluster(4).run(program)
    assert result.results == [6.0] * 4


def test_jquick_size_agreement_lockstep_is_bit_identical():
    from repro.bench.workloads import generate
    from repro.sorting import JQuickConfig, RbcBackend, jquick

    p, n = 8, 256
    parts = generate("uniform", n, p, seed=3)

    def program(env, local_data, lockstep):
        world_mpi = init_mpi(env, vendor="generic")
        world = yield from create_rbc_comm(world_mpi)
        config = JQuickConfig(seed=3, lockstep_size_agreement=lockstep)
        output, _ = yield from jquick(env, RbcBackend(world), local_data,
                                      config)
        return output

    runs = {}
    for lockstep in (False, True):
        cluster = Cluster(p)
        runs[lockstep] = cluster.run(
            program,
            rank_kwargs=[dict(local_data=parts[r], lockstep=lockstep)
                         for r in range(p)])

    assert runs[False].total_time == runs[True].total_time
    assert runs[False].finish_times == runs[True].finish_times
    for native_out, lockstep_out in zip(runs[False].results,
                                        runs[True].results):
        np.testing.assert_array_equal(native_out, lockstep_out)
