"""Differential tests for the schedule-IR lockstep tier (``hier_*`` kinds).

On machines with a non-trivial placement the collectives run the node-leader
schedules of :mod:`repro.collectives.hierarchical`; under lockstep the same
schedule IR is replayed analytically by :class:`repro.core.spmd`'s
``_SchedulePhase`` (the ``hier_*`` phase kinds).  The contract is the same as
for the flat kinds: bit-identical to the scalar IR interpreter — same finish
times, same results, same tracer statistics — and identical again on the
reference event core.  These tests prove all three tiers agree across
operation x machine preset x root, plus the ``build_hierarchy``
scalar/vectorised boundary at the ``_HIERARCHY_VECTOR_MIN`` switch.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import spmd
from repro.mpi import init_mpi
from repro.rbc import collectives as rbc
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster, Placement
from repro.simulator.costmodel import HierarchicalParams
from repro.simulator.errors import RankFailedError

#: Lockstep phase kinds this module covers differentially (scanned by
#: ``benchmarks/check_lockstep_registry.py``).
COVERS_KINDS = ("hier_bcast", "hier_reduce", "hier_allreduce", "hier_scan",
                "hier_gather", "hier_barrier")

#: Small instances of every hierarchical machine preset.  16 ranks at 4
#: ranks/node gives 4 nodes; the three-tier presets split them 2 nodes per
#: island/pod/group so both the node and the island seams are exercised.
PRESETS = {
    "supermuc": lambda: HierarchicalParams.supermuc_like(
        ranks_per_node=4, nodes_per_island=2),
    "fat_tree": lambda: HierarchicalParams.fat_tree(
        ranks_per_node=4, nodes_per_pod=2),
    "dragonfly": lambda: HierarchicalParams.dragonfly(
        ranks_per_node=4, nodes_per_group=2),
    "two_tier": lambda: HierarchicalParams.two_tier(ranks_per_node=4),
}

#: (operation, root) cells: rooted ops get both the aligned root 0 and a
#: mid-node rotated root; symmetric ops have no root axis.
CELLS = [("bcast", 0), ("bcast", 5),
         ("reduce", 0), ("reduce", 5),
         ("gather", 0), ("gather", 5),
         ("allreduce", 0), ("scan", 0), ("barrier", 0)]


def _collective_loop(env, *, op, words, reps, lockstep, root=0):
    """Rank program: barrier, then ``reps`` back-to-back collectives.

    All operations use the default algorithm selection — on these machines
    that is the node-leader schedule — except the barrier, whose default
    stays dissemination on per-rank-port machines, so it asks for
    ``algorithm="hierarchical"`` explicitly.
    """
    env.lockstep_collectives = lockstep
    world_mpi = init_mpi(env, vendor="generic")
    world_rbc = yield from create_rbc_comm(world_mpi)
    payload = (np.ones(words) * (env.rank + 1)) if words else np.zeros(0)
    yield from rbc.barrier(world_rbc)
    start = env.now
    digests = []
    for _ in range(reps):
        request = {
            "bcast": lambda: rbc.ibcast(
                world_rbc, payload if env.rank == root else None, root),
            "reduce": lambda: rbc.ireduce(world_rbc, payload, root=root),
            "scan": lambda: rbc.iscan(world_rbc, payload),
            "gather": lambda: rbc.igather(world_rbc, payload, root=root),
            "allreduce": lambda: rbc.iallreduce(world_rbc, payload),
            "barrier": lambda: rbc.ibarrier(world_rbc,
                                            algorithm="hierarchical"),
        }[op]()
        yield from env.wait_until(request.test)
        value = request.result()
        if isinstance(value, list):
            digests.append(tuple(float(np.sum(part)) for part in value))
        elif value is not None:
            digests.append(float(np.sum(value)))
        else:
            digests.append(None)
    return (env.now - start, tuple(digests))


def _observables(result):
    return (
        result.total_time,
        tuple(result.finish_times),
        tuple(result.results),
        result.stats.messages_sent,
        result.stats.words_sent,
        tuple(result.stats.per_rank_messages_sent),
        tuple(result.stats.per_rank_messages_received),
        tuple(result.stats.per_rank_words_sent),
        tuple(result.stats.per_rank_words_received),
    )


def _run(num_ranks, params, *, reference=False, placement=None, **kwargs):
    cluster = Cluster(num_ranks, params, placement=placement,
                      reference_engine=reference)
    return cluster.run(_collective_loop, **kwargs)


@pytest.mark.parametrize("preset", sorted(PRESETS))
@pytest.mark.parametrize("op,root", CELLS)
def test_hier_lockstep_bit_identical_to_scalar(preset, op, root):
    """Lockstep IR replay == scalar IR interpreter, every observable.

    As with the flat kinds, back-to-back repetitions may overlap phases in
    a way the eager pricer cannot mirror; the coordinator must then refuse
    with :class:`LockstepError` and the single-phase configuration must
    still price exactly.
    """
    params = PRESETS[preset]()
    scalar = _run(16, params, op=op, words=8, reps=2, lockstep=False,
                  root=root)
    try:
        lockstep = _run(16, params, op=op, words=8, reps=2, lockstep=True,
                        root=root)
    except RankFailedError as failure:
        assert isinstance(failure.__cause__, spmd.LockstepError)
        scalar_one = _run(16, params, op=op, words=8, reps=1,
                          lockstep=False, root=root)
        lockstep_one = _run(16, params, op=op, words=8, reps=1,
                            lockstep=True, root=root)
        assert _observables(scalar_one) == _observables(lockstep_one)
        return
    assert _observables(scalar) == _observables(lockstep)
    assert lockstep.events_processed <= scalar.events_processed


@pytest.mark.parametrize("op,root", CELLS)
def test_hier_lockstep_identical_on_reference_core(op, root):
    """The fused hier wake-ups behave identically on both event cores.

    A refusal (overlapping repetitions tying on a receive port) must be
    deterministic — both cores refuse — and the single-repetition run must
    then agree across cores.
    """
    make = PRESETS["supermuc"]
    reps = 2
    try:
        fast = _run(16, make(), op=op, words=4, reps=reps, lockstep=True,
                    root=root)
    except RankFailedError as failure:
        assert isinstance(failure.__cause__, spmd.LockstepError)
        with pytest.raises(RankFailedError):
            _run(16, make(), reference=True, op=op, words=4, reps=reps,
                 lockstep=True, root=root)
        reps = 1
        fast = _run(16, make(), op=op, words=4, reps=reps, lockstep=True,
                    root=root)
    slow = _run(16, make(), reference=True, op=op, words=4, reps=reps,
                lockstep=True, root=root)
    assert _observables(fast) == _observables(slow)
    assert fast.events_processed == slow.events_processed


def test_hier_scan_noncontiguous_placement_falls_back():
    """Cyclic ranks break prefix order == node order: scan stays flat.

    The fallback must hold identically under lockstep and scalar execution —
    a lockstep-only hierarchy gate would silently diverge.
    """
    params = HierarchicalParams.two_tier(ranks_per_node=4)
    placement = Placement.cyclic(16, num_nodes=4)
    scalar = _run(16, params, placement=placement, op="scan", words=8,
                  reps=2, lockstep=False)
    lockstep = _run(16, params, placement=placement, op="scan", words=8,
                    reps=2, lockstep=True)
    assert _observables(scalar) == _observables(lockstep)


@settings(max_examples=20, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=5),
    ranks_per_node=st.integers(min_value=1, max_value=5),
    op=st.sampled_from([op for op, _ in CELLS]),
    root_seed=st.integers(min_value=0, max_value=1 << 30),
    words=st.sampled_from([0, 3, 8]),
    preset=st.sampled_from(sorted(PRESETS)),
)
def test_hier_lockstep_property(num_nodes, ranks_per_node, op, root_seed,
                                words, preset):
    """Random machine shapes: lockstep and scalar agree or refuse honestly."""
    num_ranks = num_nodes * ranks_per_node
    params = {
        "supermuc": lambda: HierarchicalParams.supermuc_like(
            ranks_per_node=ranks_per_node, nodes_per_island=2),
        "fat_tree": lambda: HierarchicalParams.fat_tree(
            ranks_per_node=ranks_per_node, nodes_per_pod=2),
        "dragonfly": lambda: HierarchicalParams.dragonfly(
            ranks_per_node=ranks_per_node, nodes_per_group=2),
        "two_tier": lambda: HierarchicalParams.two_tier(
            ranks_per_node=ranks_per_node),
    }[preset]()
    root = root_seed % num_ranks if op in ("bcast", "reduce", "gather") else 0
    scalar = _run(num_ranks, params, op=op, words=words, reps=1,
                  lockstep=False, root=root)
    try:
        lockstep = _run(num_ranks, params, op=op, words=words, reps=1,
                        lockstep=True, root=root)
    except RankFailedError as failure:
        # The leading barrier's port writes can tie the collective's at
        # the same instant; the coordinator must refuse, never misprice.
        assert isinstance(failure.__cause__, spmd.LockstepError)
        return
    assert _observables(scalar) == _observables(lockstep)


# ---------------------------------------------------------------------------
# build_hierarchy scalar/vectorised boundary: the numpy bulk path takes over
# exactly at group size _HIERARCHY_VECTOR_MIN (4096).  Straddle it.
# ---------------------------------------------------------------------------

def _hierarchies_equal(a, b):
    return (a.node_members == b.node_members and a.node_of == b.node_of
            and a.islands == b.islands
            and a.island_of_node == b.island_of_node
            and a.nontrivial == b.nontrivial)


@pytest.mark.parametrize("size", [4095, 4096, 4097])
def test_build_hierarchy_boundary(size):
    """4095 takes the scalar loop, 4096/4097 the vectorised path — and the
    two constructions agree exactly on all three sizes, so the switchover
    can never change a schedule."""
    from repro.collectives import hierarchical as H
    from repro.collectives.ir import schedule_for, validate_schedule

    placement = Placement.regular(4097, ranks_per_node=16, nodes_per_island=8)
    world_ranks = range(size)

    def forced(threshold):
        saved = H._HIERARCHY_VECTOR_MIN
        try:
            H._HIERARCHY_VECTOR_MIN = threshold
            return H.build_hierarchy(placement, world_ranks)
        finally:
            H._HIERARCHY_VECTOR_MIN = saved

    default = H.build_hierarchy(placement, world_ranks)
    scalar = forced(1 << 60)   # force the scalar loop
    vector = forced(1)         # force the numpy bulk path
    assert _hierarchies_equal(default, scalar)
    assert _hierarchies_equal(default, vector)
    assert default.contiguous
    # The hierarchy feeds straight into the IR builders: every op's schedule
    # must validate on both sides of the boundary.
    for op_name in ("bcast", "reduce", "allreduce", "scan", "gather",
                    "barrier"):
        validate_schedule(schedule_for(default, op_name, root=size - 1
                                       if op_name in ("bcast", "reduce",
                                                      "gather") else 0))
