"""Aggregation tables, CSV export and the ``python -m repro.experiments`` CLI."""

import csv
import json
import os

import pytest

from repro.bench.tables import Table
from repro.experiments import (
    RESULT_COLUMNS,
    Scenario,
    aggregate_results,
    execute_scenario,
    write_csv,
)
from repro.experiments.cli import main


def _results():
    good = execute_scenario(Scenario.from_dict(dict(
        kind="collective", operation="bcast", impl="rbc", vendor="generic",
        num_ranks=8, words=16, repetitions=2, label="RBC bcast")))
    bad = execute_scenario(Scenario(machine="missing"))
    return [good, bad]


# ---------------------------------------------------------------------------
# Aggregation.
# ---------------------------------------------------------------------------

def test_aggregate_results_is_a_bench_table():
    results = _results()
    table = aggregate_results(results, title="sweep", notes=["a note"])
    assert isinstance(table, Table)
    assert list(table.columns) == list(RESULT_COLUMNS)
    assert len(table.rows) == 2

    good_row, bad_row = table.rows
    assert good_row["label"] == "RBC bcast"
    assert good_row["status"] == "ok"
    assert good_row["time_ms"] == results[0].time_ms
    assert good_row["n_per_proc"] == 16
    assert good_row["repetitions"] == 2
    assert good_row["simulated_us"] > 0

    assert bad_row["status"] == "failed"
    assert bad_row["time_ms"] is None
    assert "failed" in table.to_text()  # renders despite the None cells


def test_aggregate_custom_columns():
    table = aggregate_results(_results()[:1],
                              columns=("machine", "time_ms"))
    assert list(table.columns) == ["machine", "time_ms"]
    assert set(table.rows[0]) == {"machine", "time_ms"}


def test_write_csv_round_trip(tmp_path):
    table = aggregate_results(_results())
    path = write_csv(table, str(tmp_path / "out.csv"))
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert rows[0]["status"] == "ok"
    assert float(rows[0]["time_ms"]) == table.rows[0]["time_ms"]
    assert rows[1]["time_ms"] == ""  # None -> empty cell


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------

def test_cli_list_and_show(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig4_grid" in out and "smoke" in out

    assert main(["show", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "4 scenario(s)" in out


def test_cli_run_smoke_twice_hits_cache(tmp_path, capsys):
    out_dir = str(tmp_path / "out")
    cache_dir = str(tmp_path / "cache")
    argv = ["run", "smoke", "--workers", "2", "--out", out_dir,
            "--cache-dir", cache_dir]

    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "4 executed, 0 cached, 0 failed" in first

    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "0 executed, 4 cached, 0 failed" in second

    for artifact in ("smoke.txt", "smoke.json", "smoke.csv",
                     "smoke_results.json", "BENCH_smoke.json"):
        assert os.path.exists(os.path.join(out_dir, artifact)), artifact

    with open(os.path.join(out_dir, "BENCH_smoke.json")) as handle:
        bench = json.load(handle)
    assert bench["schema"] == "repro-bench-result/v1"
    assert bench["scenarios"] == 4
    # The second (fully cached) run executed no fresh simulation.
    assert bench["cluster_runs"] == 0 and bench["cached_scenarios"] == 4

    with open(os.path.join(out_dir, "smoke_results.json")) as handle:
        results = json.load(handle)
    assert len(results) == 4 and all(r["cached"] for r in results)


def test_cli_set_overrides_and_no_cache(tmp_path, capsys):
    out_dir = str(tmp_path / "out")
    assert main(["run", "smoke", "--no-cache", "--out", out_dir,
                 "--set", "num_ranks=8", "--set", "words=[4]"]) == 0
    out = capsys.readouterr().out
    assert "2 scenario(s) — 2 executed" in out  # words axis collapsed
    assert "p=8" in out


def test_cli_run_reports_failures_with_nonzero_exit(tmp_path, capsys):
    spec_path = tmp_path / "bad.json"
    spec_path.write_text(json.dumps({
        "name": "bad",
        "grid": [{"fixed": {"kind": "collective", "num_ranks": 4,
                            "impl": "rbc", "vendor": "generic",
                            "operation": "bcast"},
                  "axes": {"words": [8]}}],
    }))
    # Valid spec, but the runtime fails: patch in an unknown machine after
    # validation by pointing the spec at a machine preset that exists only
    # in the file system of another build.  Simpler: an invalid spec file
    # fails at expansion with a SystemExit-free ValueError.
    bad = json.loads(spec_path.read_text())
    bad["grid"][0]["fixed"]["machine"] = "warp_drive"
    spec_path.write_text(json.dumps(bad))
    with pytest.raises(ValueError, match="machine preset"):
        main(["run", str(spec_path), "--no-cache",
              "--out", str(tmp_path / "out")])


def test_cli_unknown_spec_name_exits():
    with pytest.raises(SystemExit):
        main(["run", "no_such_spec"])
    with pytest.raises(SystemExit, match="field=value"):
        main(["run", "smoke", "--set", "oops"])


# ---------------------------------------------------------------------------
# compare: cell-by-cell ratio tables between two archived result sets.
# ---------------------------------------------------------------------------

def _archived(scenario_id, durations_us=(1000.0,), messages=10,
              simulated_us=500.0, error=None):
    return {
        "scenario_id": scenario_id,
        "scenario": {},
        "durations_us": list(durations_us),
        "messages": messages,
        "telemetry": {"simulated_us": simulated_us},
        "wall_clock_s": 0.1,
        "error": error,
        "cached": False,
    }


def test_compare_result_sets_ratios():
    from repro.experiments.aggregate import compare_result_sets

    baseline = [_archived("aaa"), _archived("bbb", durations_us=(2000.0,))]
    candidate = [_archived("aaa", durations_us=(2000.0,), messages=20,
                           simulated_us=250.0),
                 _archived("bbb", durations_us=(2000.0,))]
    table = compare_result_sets(baseline, candidate)
    row_a, row_b = table.rows
    assert row_a["scenario_id"] == "aaa" and row_a["status"] == "ok"
    assert row_a["time_ms_base"] == 1.0 and row_a["time_ms_new"] == 2.0
    assert row_a["time_ms_ratio"] == 2.0
    assert row_a["simulated_us_ratio"] == 0.5
    assert row_a["messages_ratio"] == 2.0
    assert row_b["time_ms_ratio"] == 1.0 and row_b["status"] == "ok"


def test_compare_result_sets_flags_mismatches():
    from repro.experiments.aggregate import compare_result_sets

    baseline = [_archived("only-base"), _archived("both"),
                _archived("broken", error="boom")]
    candidate = [_archived("both"), _archived("only-cand"),
                 _archived("broken")]
    table = compare_result_sets(baseline, candidate)
    status = {row["scenario_id"]: row["status"] for row in table.rows}
    assert status == {"only-base": "missing-candidate", "both": "ok",
                      "broken": "failed", "only-cand": "missing-baseline"}
    # Baseline order first, then candidate-only scenarios.
    assert [row["scenario_id"] for row in table.rows] \
        == ["only-base", "both", "broken", "only-cand"]


def _write_archive(path, entries):
    with open(path, "w") as handle:
        json.dump(entries, handle)
    return str(path)


def test_cli_compare_matching_sets(tmp_path, capsys):
    base = _write_archive(tmp_path / "base.json",
                          [_archived("aaa"), _archived("bbb")])
    cand = _write_archive(tmp_path / "cand.json",
                          [_archived("aaa"), _archived("bbb")])
    out_dir = str(tmp_path / "cmp")
    assert main(["compare", base, cand, "--out", out_dir]) == 0
    out = capsys.readouterr().out
    assert "aaa" in out and "bbb" in out
    for artifact in ("compare.txt", "compare.json", "compare.csv"):
        assert os.path.exists(os.path.join(out_dir, artifact)), artifact
    with open(os.path.join(out_dir, "compare.csv"), newline="") as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 2
    assert all(float(row["time_ms_ratio"]) == 1.0 for row in rows)


def test_cli_compare_fail_above_gate(tmp_path, capsys):
    base = _write_archive(tmp_path / "base.json", [_archived("aaa")])
    cand = _write_archive(tmp_path / "cand.json",
                          [_archived("aaa", durations_us=(3000.0,))])
    assert main(["compare", base, cand]) == 0
    capsys.readouterr()
    assert main(["compare", base, cand, "--fail-above", "1.5"]) == 1
    err = capsys.readouterr().err
    assert "REGRESSION" in err and "3.000" in err


def test_cli_compare_unmatched_scenarios_exit_nonzero(tmp_path, capsys):
    base = _write_archive(tmp_path / "base.json", [_archived("aaa")])
    cand = _write_archive(tmp_path / "cand.json", [_archived("zzz")])
    assert main(["compare", base, cand]) == 1
    err = capsys.readouterr().err
    assert "missing-candidate" in err and "missing-baseline" in err


def test_cli_compare_rejects_malformed_archive(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"not": "a list"}))
    good = _write_archive(tmp_path / "good.json", [_archived("aaa")])
    with pytest.raises(SystemExit, match="expected a JSON array"):
        main(["compare", str(bad), good])
    with pytest.raises(SystemExit):
        main(["compare", str(tmp_path / "missing.json"), good])
