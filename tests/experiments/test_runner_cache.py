"""Runner + cache: equivalence with the hand-written benches, parallelism,
failure capture, incremental re-runs."""

import pytest

from repro.bench.harness import (
    TELEMETRY,
    collective_program,
    repeat_max_duration,
)
from repro.experiments import (
    ExperimentSpec,
    Grid,
    ResultCache,
    Scenario,
    execute_scenario,
    run_scenarios,
    run_spec,
)
from repro.simulator import machine_preset


def _collective(machine="flat", words=16, **overrides):
    config = dict(kind="collective", machine=machine, operation="scan",
                  impl="rbc", vendor="ibm", words=words, num_ranks=16,
                  repetitions=2)
    config.update(overrides)
    return Scenario.from_dict(config)


# ---------------------------------------------------------------------------
# Single-scenario execution.
# ---------------------------------------------------------------------------

def test_collective_scenario_matches_hand_written_bench():
    """The overlap guarantee: a flat scenario cell reproduces the exact
    ``repeat_max_duration`` measurement of the single-config benches."""
    scenario = _collective()
    result = execute_scenario(scenario)
    assert result.ok

    expected = repeat_max_duration(
        scenario.num_ranks,
        lambda rep: (collective_program, (), dict(
            operation="scan", impl="rbc", vendor="ibm", words=16)),
        repetitions=2)
    assert result.measurement() == expected
    assert result.time_ms == expected.mean_ms


def test_hierarchical_machine_cell_matches_direct_run():
    scenario = _collective(machine="fat_tree", words=256)
    result = execute_scenario(scenario)
    expected = repeat_max_duration(
        16,
        lambda rep: (collective_program, (), dict(
            operation="scan", impl="rbc", vendor="ibm", words=256)),
        repetitions=2, params=machine_preset("fat_tree"))
    assert result.measurement() == expected


def test_scenario_telemetry_counts_only_its_own_runs():
    result = execute_scenario(_collective())
    assert result.telemetry["cluster_runs"] == 2  # one per repetition
    assert result.telemetry["simulated_us"] > 0
    assert result.telemetry["events_processed"] > 0


def test_jquick_scenario_is_deterministic():
    scenario = Scenario.from_dict(dict(
        kind="jquick", machine="two_tier", impl="rbc", vendor="generic",
        num_ranks=8, n_per_proc=32, repetitions=2, seed=11))
    first = execute_scenario(scenario)
    second = execute_scenario(scenario)
    assert first.ok, first.error
    assert first.durations_us == second.durations_us
    assert first.durations_us[0] != first.durations_us[1]  # per-rep seeds


def test_failures_are_captured_not_raised():
    broken = Scenario(machine="not-a-machine")  # bypasses from_dict validation
    result = execute_scenario(broken)
    assert not result.ok
    assert "not-a-machine" in result.error
    with pytest.raises(RuntimeError, match="failed"):
        result.measurement()


def test_parallel_run_captures_failures_like_the_serial_path():
    """One invalid scenario must not abort the pool or lose other results."""
    scenarios = [Scenario(machine="not-a-machine"), _collective()]
    serial = list(run_scenarios(scenarios, workers=1))
    parallel = list(run_scenarios(scenarios, workers=2))
    for results in (serial, parallel):
        assert [r.ok for r in results] == [False, True]
        assert "not-a-machine" in results[0].error
    assert serial[1].durations_us == parallel[1].durations_us


# ---------------------------------------------------------------------------
# Sweeps: ordering, parallelism, telemetry routing.
# ---------------------------------------------------------------------------

def _mini_spec():
    return ExperimentSpec(name="mini", grids=[Grid(
        fixed=dict(kind="collective", operation="bcast", impl="rbc",
                   vendor="generic", num_ranks=16, repetitions=1),
        axes={"machine": ["flat", "fat_tree"], "words": [4, 64]},
    )])


def test_parallel_run_equals_serial_run():
    spec = _mini_spec()
    serial = run_spec(spec, workers=1)
    parallel = run_spec(spec, workers=2)
    assert [r.scenario.scenario_id for r in serial.results] == \
        [r.scenario.scenario_id for r in parallel.results]
    assert [r.durations_us for r in serial.results] == \
        [r.durations_us for r in parallel.results]
    assert serial.telemetry().snapshot() == parallel.telemetry().snapshot()


def test_parallel_run_feeds_global_telemetry():
    """Worker-process simulations must land in the BENCH_*.json sink."""
    before = TELEMETRY.snapshot()
    run = run_spec(_mini_spec(), workers=2)
    after = TELEMETRY.snapshot()
    executed = run.telemetry().snapshot()
    assert executed["cluster_runs"] == 4
    assert after["cluster_runs"] - before["cluster_runs"] == 4
    assert after["simulated_us"] - before["simulated_us"] == \
        pytest.approx(executed["simulated_us"])


def test_progress_callback_sees_every_result():
    seen = []
    run_spec(_mini_spec(), progress=seen.append)
    assert len(seen) == 4


# ---------------------------------------------------------------------------
# Cache.
# ---------------------------------------------------------------------------

def test_second_run_hits_cache_for_all_unchanged_scenarios(tmp_path):
    spec = _mini_spec()
    cache = ResultCache(str(tmp_path))
    first = run_spec(spec, cache=cache)
    assert (first.executed, first.cached) == (4, 0)

    second = run_spec(spec, cache=cache)
    assert (second.executed, second.cached) == (0, 4)
    assert [r.durations_us for r in first.results] == \
        [r.durations_us for r in second.results]
    # Cache hits ran no fresh simulation: the executed-telemetry is empty.
    assert second.telemetry().cluster_runs == 0

    forced = run_spec(spec, cache=cache, force=True)
    assert (forced.executed, forced.cached) == (4, 0)


def test_changed_scenario_misses_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    run_spec(_mini_spec(), cache=cache)
    grown = _mini_spec()
    grown.grids[0].axes["words"] = [4, 64, 256]
    rerun = run_spec(grown, cache=cache)
    assert (rerun.executed, rerun.cached) == (2, 4)


def test_code_fingerprint_partitions_the_cache(tmp_path):
    scenario = _collective()
    cache = ResultCache(str(tmp_path), fingerprint="aaaa")
    cache.put(execute_scenario(scenario))
    assert cache.get(scenario) is not None
    other_code = ResultCache(str(tmp_path), fingerprint="bbbb")
    assert other_code.get(scenario) is None
    assert cache.key(scenario).endswith("-aaaa")
    removed = other_code.prune()
    assert len(removed) == 1
    assert cache.get(scenario) is None


def test_cache_rejects_failed_results_and_tampered_entries(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="aaaa")
    failed = execute_scenario(Scenario(machine="nope"))
    with pytest.raises(ValueError, match="failed"):
        cache.put(failed)

    scenario = _collective()
    path = cache.put(execute_scenario(scenario))
    # A hand-edited entry whose stored scenario no longer matches is a miss.
    import json
    with open(path) as handle:
        data = json.load(handle)
    data["scenario"]["words"] = 999
    with open(path, "w") as handle:
        json.dump(data, handle)
    assert cache.get(scenario) is None


def test_cached_results_marked_cached(tmp_path):
    cache = ResultCache(str(tmp_path))
    scenario = _collective()
    assert cache.get(scenario) is None
    fresh = execute_scenario(scenario)
    cache.put(fresh)
    assert not fresh.cached
    hit = cache.get(scenario)
    assert hit.cached and hit.durations_us == fresh.durations_us


# ---------------------------------------------------------------------------
# The acceptance grid: the shipped fig4 spec, downscaled.
# ---------------------------------------------------------------------------

def test_shipped_fig4_grid_runs_parallel_and_matches_single_config_cells():
    spec = ExperimentSpec.load("fig4_grid").override(num_ranks=16,
                                                    words=[1, 64])
    scenarios = spec.scenarios()
    assert len(scenarios) >= 12
    assert len({s.machine for s in scenarios}) >= 3

    run = run_spec(spec, workers=2)
    assert run.failed == 0

    # Overlapping cells (the flat machine) must reproduce the exact numbers
    # of the single-configuration fig4 bench path.
    flat = [r for r in run.results if r.scenario.machine == "flat"]
    assert flat
    for result in flat:
        scenario = result.scenario
        expected = repeat_max_duration(
            scenario.num_ranks,
            lambda rep: (collective_program, (), dict(
                operation="scan", impl=scenario.impl, vendor=scenario.vendor,
                words=scenario.words)),
            repetitions=scenario.repetitions)
        assert result.measurement() == expected
