"""Scenario/ExperimentSpec model: validation, IDs, grids, spec files."""

import json

import pytest

from repro.bench.harness import COLLECTIVE_OPS
from repro.experiments import (
    COLLECTIVE_OPERATIONS,
    ExperimentSpec,
    Grid,
    Scenario,
    build_placement,
    shipped_spec_names,
)
from repro.simulator import MACHINE_PRESETS, HierarchicalParams, NetworkParams


def test_collective_operations_match_harness():
    assert COLLECTIVE_OPERATIONS == COLLECTIVE_OPS


def test_workloads_match_bench_registry():
    from repro.bench.workloads import WORKLOADS
    from repro.experiments.spec import _WORKLOADS

    assert set(_WORKLOADS) == set(WORKLOADS)


# ---------------------------------------------------------------------------
# Scenario validation.
# ---------------------------------------------------------------------------

def test_default_scenario_is_valid():
    Scenario().validate()


@pytest.mark.parametrize("overrides, match", [
    (dict(kind="mystery"), "scenario kind"),
    (dict(machine="supermuc2"), "machine preset"),
    (dict(num_ranks=0), "num_ranks"),
    (dict(repetitions=0), "repetitions"),
    (dict(impl="openmpi"), "impl"),
    (dict(vendor="cray"), "vendor"),
    (dict(operation="alltoall"), "operation"),
    (dict(words=-1), "words"),
    (dict(kind="jquick", num_ranks=12), "power-of-two"),
    (dict(kind="jquick", workload="lumpy"), "workload"),
    (dict(kind="jquick", schedule="eager"), "schedule"),
    (dict(placement={"kind": "spiral"}), "placement kind"),
])
def test_invalid_scenarios_are_rejected(overrides, match):
    with pytest.raises(ValueError, match=match):
        Scenario(**overrides).validate()


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown scenario field"):
        Scenario.from_dict({"wordz": 4})


# ---------------------------------------------------------------------------
# Content-hash IDs.
# ---------------------------------------------------------------------------

def test_scenario_id_is_stable_and_content_addressed():
    a = Scenario(operation="scan", words=64)
    b = Scenario(operation="scan", words=64)
    c = Scenario(operation="scan", words=128)
    assert a.scenario_id == b.scenario_id
    assert a.scenario_id != c.scenario_id
    assert len(a.scenario_id) == 12
    int(a.scenario_id, 16)  # hex digest


def test_scenario_id_ignores_other_kinds_fields():
    """Collective IDs must not move when jquick-only defaults change."""
    a = Scenario(kind="collective", words=16)
    b = Scenario(kind="collective", words=16, n_per_proc=999,
                 workload="zipf", schedule="cascaded")
    assert a.scenario_id == b.scenario_id
    assert "n_per_proc" not in a.canonical()


def test_canonical_is_json_stable():
    scenario = Scenario(placement={"kind": "regular", "ranks_per_node": 4,
                                   "nodes_per_island": 2})
    payload = json.dumps(scenario.canonical(), sort_keys=True)
    assert json.loads(payload) == scenario.canonical()


# ---------------------------------------------------------------------------
# Machine/placement resolution.
# ---------------------------------------------------------------------------

def test_resolve_machine_uses_preset_table():
    params, placement = Scenario(machine="flat").resolve_machine()
    assert isinstance(params, NetworkParams)
    assert placement is None
    params, _ = Scenario(machine="dragonfly").resolve_machine()
    assert isinstance(params, HierarchicalParams)


def test_build_placement_kinds():
    assert build_placement(None, 8) is None
    single = build_placement({"kind": "single_node"}, 8)
    assert single.num_nodes() == 1
    regular = build_placement({"kind": "regular", "ranks_per_node": 2,
                               "nodes_per_island": 2}, 8)
    assert regular.num_nodes() == 4 and regular.num_islands() == 2
    cyclic = build_placement({"kind": "cyclic", "num_nodes": 4}, 8)
    assert cyclic.nodes[:5] == (0, 1, 2, 3, 0)


# ---------------------------------------------------------------------------
# Grid expansion.
# ---------------------------------------------------------------------------

def test_grid_expansion_is_row_major_and_merges_mapping_axes():
    grid = Grid(
        fixed=dict(kind="collective", operation="scan", num_ranks=8),
        axes={
            "impl": [dict(impl="rbc", vendor="ibm", label="RBC"),
                     dict(impl="mpi", vendor="intel", label="Intel")],
            "words": [1, 2],
        },
    )
    scenarios = grid.expand()
    assert [(s.label, s.words) for s in scenarios] == [
        ("RBC", 1), ("RBC", 2), ("Intel", 1), ("Intel", 2)]
    assert scenarios[2].vendor == "intel"


def test_grid_rejects_empty_axis():
    with pytest.raises(ValueError, match="non-empty list"):
        Grid(axes={"words": []}).expand()


def test_spec_rejects_duplicate_scenarios():
    grid = Grid(fixed=dict(num_ranks=8), axes={"words": [1, 1]})
    with pytest.raises(ValueError, match="duplicate"):
        ExperimentSpec(name="dup", grids=[grid]).scenarios()


def test_override_pins_field_and_drops_axis():
    grid = Grid(fixed=dict(operation="scan"),
                axes={"num_ranks": [8, 16], "words": [1, 2]})
    spec = ExperimentSpec(name="s", grids=[grid]).override(num_ranks=4)
    scenarios = spec.scenarios()
    assert len(scenarios) == 2
    assert {s.num_ranks for s in scenarios} == {4}


def test_override_wins_over_mapping_axes():
    """A pinned field must not be shadowed by a multi-field axis entry."""
    spec = ExperimentSpec.load("fig4_grid").override(vendor="generic")
    scenarios = spec.scenarios()
    assert {s.vendor for s in scenarios} == {"generic"}
    # The rest of the mapping axis (impl, label) still varies.
    assert {s.impl for s in scenarios} == {"rbc", "mpi"}


def test_override_keeps_covarying_fields_of_a_mapping_axis():
    """Pinning a field a mapping axis co-varies must keep the axis's other
    fields (vendor/label panels), not drop the axis wholesale."""
    spec = ExperimentSpec.load("fig4_grid").override(impl="mpi")
    scenarios = spec.scenarios()
    assert {s.impl for s in scenarios} == {"mpi"}
    assert {s.vendor for s in scenarios} == {"ibm", "intel"}
    assert {s.label for s in scenarios} == {
        "RBC::Iscan", "Intel MPI Iscan", "IBM MPI Iscan"}


def test_override_drops_axis_fully_consumed_by_the_override():
    grid = Grid(fixed=dict(operation="scan"),
                axes={"impl": [dict(impl="rbc"), dict(impl="mpi")],
                      "words": [1, 2]})
    spec = ExperimentSpec(name="s", grids=[grid]).override(impl="mpi")
    scenarios = spec.scenarios()  # no duplicate-scenario error
    assert len(scenarios) == 2
    assert {s.impl for s in scenarios} == {"mpi"}


# ---------------------------------------------------------------------------
# Spec files.
# ---------------------------------------------------------------------------

def test_shipped_specs_load_and_expand():
    names = shipped_spec_names()
    assert {"fig4_grid", "fig9_grid", "smoke"} <= set(names)
    for name in names:
        spec = ExperimentSpec.load(name)
        scenarios = spec.scenarios()
        assert scenarios, name
        for scenario in scenarios:
            assert scenario.machine in MACHINE_PRESETS


def test_shipped_fig4_grid_shape():
    """The acceptance grid: >= 12 scenarios across >= 3 machine presets."""
    scenarios = ExperimentSpec.load("fig4_grid").scenarios()
    machines = {s.machine for s in scenarios}
    assert len(scenarios) >= 12
    assert len(machines) >= 3
    assert all(s.operation == "scan" for s in scenarios)


def test_smoke_spec_is_exactly_four_scenarios():
    assert len(ExperimentSpec.load("smoke").scenarios()) == 4


def test_spec_from_json_file(tmp_path):
    path = tmp_path / "mini.json"
    path.write_text(json.dumps({
        "name": "mini",
        "grid": [{"fixed": {"num_ranks": 8}, "axes": {"words": [1, 2]}}],
    }))
    spec = ExperimentSpec.from_file(str(path))
    assert [s.words for s in spec.scenarios()] == [1, 2]


def test_spec_load_unknown_name():
    with pytest.raises(FileNotFoundError, match="no shipped spec"):
        ExperimentSpec.load("nonexistent_spec")


def test_spec_requires_grids_and_name():
    with pytest.raises(ValueError, match="name"):
        ExperimentSpec.from_dict({})
    with pytest.raises(ValueError, match="no \\[\\[grid\\]\\]"):
        ExperimentSpec.from_dict({"name": "empty"})
    with pytest.raises(ValueError, match="unknown grid key"):
        ExperimentSpec.from_dict({"name": "bad",
                                  "grid": [{"fixd": {}}]})
