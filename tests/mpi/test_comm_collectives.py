"""Collective operations on simulated MPI communicators (incl. vendor model)."""

import numpy as np
import pytest

from repro.mpi import MAX, SUM, MpiGroup, init_mpi
from repro.simulator import Cluster


SIZES = [1, 2, 3, 5, 8, 13]


@pytest.mark.parametrize("p", SIZES)
def test_bcast_reduce_scan_gather(run_ranks, p):
    def program(env):
        world = init_mpi(env)
        root = p - 1
        value = yield from world.bcast("hello" if world.rank == root else None, root)
        total = yield from world.reduce(world.rank, SUM, root=0)
        prefix = yield from world.scan(world.rank, SUM)
        gathered = yield from world.gather(world.rank ** 2, root=root)
        return value, total, prefix, gathered

    results = run_ranks(p, program)
    for rank, (value, total, prefix, gathered) in enumerate(results):
        assert value == "hello"
        assert prefix == rank * (rank + 1) // 2
        if rank == 0:
            assert total == p * (p - 1) // 2
        if rank == p - 1:
            assert gathered == [r ** 2 for r in range(p)]


@pytest.mark.parametrize("p", SIZES)
def test_allreduce_allgather_exscan_barrier(run_ranks, p):
    def program(env):
        world = init_mpi(env)
        everyone = yield from world.allreduce(world.rank + 1, SUM)
        maxima = yield from world.allreduce(world.rank, MAX)
        listing = yield from world.allgather(chr(ord("a") + world.rank))
        exclusive = yield from world.exscan(1, SUM)
        yield from world.barrier()
        return everyone, maxima, listing, exclusive

    results = run_ranks(p, program)
    for rank, (everyone, maxima, listing, exclusive) in enumerate(results):
        assert everyone == p * (p + 1) // 2
        assert maxima == p - 1
        assert listing == [chr(ord("a") + r) for r in range(p)]
        assert exclusive == (None if rank == 0 else rank)


def test_alltoallv_object_payloads(run_ranks):
    p = 5

    def program(env):
        world = init_mpi(env)
        payloads = [np.full(dest + 1, float(world.rank)) for dest in range(p)]
        received = yield from world.alltoallv(payloads)
        return received

    results = run_ranks(p, program)
    for rank, received in enumerate(results):
        for source, chunk in enumerate(received):
            assert chunk.size == rank + 1
            assert np.all(chunk == source)


def test_collectives_on_sub_communicator(run_ranks):
    def program(env):
        world = init_mpi(env)
        color = world.rank % 2
        sub = yield from world.split(color, key=world.rank)
        total = yield from sub.allreduce(world.rank, SUM)
        return color, total

    results = run_ranks(8, program)
    evens = sum(r for r in range(8) if r % 2 == 0)
    odds = sum(r for r in range(8) if r % 2 == 1)
    for rank, (color, total) in enumerate(results):
        assert total == (evens if color == 0 else odds)


def test_simultaneous_nonblocking_collectives_do_not_interfere(run_ranks):
    """Two outstanding Ibcasts on one communicator deliver the right payloads
    (the synchronous collective sequence counter keeps them apart)."""

    def program(env):
        world = init_mpi(env)
        first = world.ibcast("first" if world.rank == 0 else None, 0)
        second = world.ibcast("second" if world.rank == 0 else None, 0)
        # Complete them in reverse order on purpose.
        yield from env.wait_until(second.test)
        yield from env.wait_until(first.test)
        return first.result(), second.result()

    for values in run_ranks(6, program):
        assert values == ("first", "second")


def test_vendor_word_factor_slows_native_collectives(run_cluster):
    """Intel's nonblocking reduce pays a large per-word factor (Fig. 9d)."""

    def program(env, vendor):
        world = init_mpi(env, vendor=vendor)
        request = world.ireduce(np.zeros(4096), SUM, root=0)
        yield from env.wait_until(request.test)
        return env.now

    slow = max(run_cluster(8, program, "intel").results)
    fast = max(run_cluster(8, program, "generic").results)
    assert slow > fast * 3


def test_rbc_collectives_do_not_pay_vendor_factor(run_cluster):
    """RBC collectives run over plain point-to-point messages, so they are not
    affected by the vendor's nonblocking-collective overhead (Fig. 9)."""
    from repro.rbc import collectives as rbc_collectives
    from repro.rbc import create_rbc_comm

    def program(env, impl):
        world = init_mpi(env, vendor="intel")
        rbc_world = yield from create_rbc_comm(world)
        payload = np.zeros(4096)
        if impl == "rbc":
            request = rbc_collectives.ireduce(rbc_world, payload, root=0)
        else:
            request = world.ireduce(payload, SUM, root=0)
        yield from env.wait_until(request.test)
        return env.now

    rbc_time = max(run_cluster(8, program, "rbc").results)
    mpi_time = max(run_cluster(8, program, "mpi").results)
    assert rbc_time < mpi_time
