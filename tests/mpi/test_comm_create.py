"""Communicator creation: comm_create_group, comm_split, comm_dup, vendor costs."""

import pytest

from repro.mpi import SUM, MpiGroup, init_mpi
from repro.simulator import Cluster


def test_create_group_builds_working_communicator(run_ranks):
    def program(env):
        world = init_mpi(env)
        if world.rank >= 4:
            yield from env.sleep(0.0)
            return None
        group = MpiGroup.contiguous(0, 3)
        sub = yield from world.create_group(group, tag=11)
        assert sub.size == 4
        assert sub.rank == world.rank
        total = yield from sub.allreduce(1, SUM)
        return total

    results = run_ranks(8, program)
    assert results[:4] == [4, 4, 4, 4]
    assert results[4:] == [None] * 4


def test_create_group_rejects_non_members(run_ranks):
    def program(env):
        world = init_mpi(env)
        group = MpiGroup.contiguous(0, 0)
        if world.rank == 1:
            with pytest.raises(ValueError):
                yield from world.create_group(group, tag=1)
            return "rejected"
        if world.rank == 0:
            sub = yield from world.create_group(group, tag=1)
            return sub.size
        yield from env.sleep(0.0)

    results = run_ranks(2, program)
    assert results == [1, "rejected"]


def test_create_group_allocates_distinct_context_ids(run_ranks):
    def program(env):
        world = init_mpi(env)
        group = MpiGroup.contiguous(0, world.size - 1)
        first = yield from world.create_group(group, tag=1)
        second = yield from world.create_group(group, tag=2)
        assert first.context_id != second.context_id != world.context_id
        # Traffic on the two communicators does not interfere.
        if world.rank == 0:
            first.isend("A", 1, tag=0)
            second.isend("B", 1, tag=0)
            yield from env.sleep(0.0)
            return None
        if world.rank == 1:
            b = yield from second.recv(0, 0)
            a = yield from first.recv(0, 0)
            return a, b
        yield from env.sleep(0.0)

    results = run_ranks(3, program)
    assert results[1] == ("A", "B")


def test_overlapping_groups_with_distinct_tags(run_ranks):
    """A process can create two overlapping communicators back to back."""

    def program(env):
        world = init_mpi(env)
        results = []
        if world.rank <= 2:
            left = yield from world.create_group(MpiGroup.contiguous(0, 2), tag=1)
            results.append((yield from left.allreduce(1, SUM)))
        if world.rank >= 2:
            right = yield from world.create_group(MpiGroup.contiguous(2, 4), tag=2)
            results.append((yield from right.allreduce(1, SUM)))
        return results

    results = run_ranks(5, program)
    assert results[0] == [3] and results[1] == [3]
    assert results[2] == [3, 3]
    assert results[3] == [3] and results[4] == [3]


def test_comm_split_groups_by_color_and_orders_by_key(run_ranks):
    def program(env):
        world = init_mpi(env)
        color = world.rank % 3
        # Reverse the ordering within each color via the key.
        sub = yield from world.split(color, key=-world.rank)
        members = yield from sub.allgather(world.rank)
        return color, sub.rank, members

    results = run_ranks(9, program)
    for world_rank, (color, sub_rank, members) in enumerate(results):
        expected_members = sorted(
            (r for r in range(9) if r % 3 == color), reverse=True)
        assert members == expected_members
        assert members[sub_rank] == world_rank


def test_comm_split_with_undefined_color(run_ranks):
    def program(env):
        world = init_mpi(env)
        color = 0 if world.rank < 2 else None
        sub = yield from world.split(color, key=world.rank)
        if color is None:
            assert sub is None
            return None
        return sub.size

    results = run_ranks(5, program)
    assert results == [2, 2, None, None, None]


def test_comm_dup_preserves_group(run_ranks):
    def program(env):
        world = init_mpi(env)
        duplicate = yield from world.dup()
        assert duplicate.size == world.size
        assert duplicate.rank == world.rank
        assert duplicate.context_id != world.context_id
        value = yield from duplicate.allreduce(1, SUM)
        return value

    assert run_ranks(4, program) == [4, 4, 4, 4]


def test_comm_free_releases_context(run_ranks):
    def program(env):
        world = init_mpi(env)
        first = yield from world.dup()
        first_id = first.context_id
        first.free()
        second = yield from world.dup()
        # The released id is reused by the next creation.
        return first_id == second.context_id

    assert all(run_ranks(3, program))


def _creation_time(vendor, method, p=32):
    def program(env):
        world = init_mpi(env, vendor=vendor)
        half = world.size // 2
        start = env.now
        if method == "create_group":
            first, last = (0, half - 1) if world.rank < half else (half, world.size - 1)
            yield from world.create_group(MpiGroup.contiguous(first, last), tag=1)
        else:
            yield from world.split(0 if world.rank < half else 1, world.rank)
        return env.now - start

    return max(Cluster(p).run(program).results)


def test_vendor_cost_ordering_matches_fig5():
    intel_create = _creation_time("intel", "create_group")
    intel_split = _creation_time("intel", "split")
    ibm_create = _creation_time("ibm", "create_group")
    generic_create = _creation_time("generic", "create_group")
    assert ibm_create > intel_create * 3
    assert intel_split > intel_create
    assert generic_create <= intel_create


def test_create_group_cost_grows_with_group_size():
    small = _creation_time("intel", "create_group", p=16)
    large = _creation_time("intel", "create_group", p=128)
    assert large > small
