"""Point-to-point communication and probing on simulated MPI communicators."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, PROC_NULL, init_mpi
from repro.mpi.request import test_all as request_test_all
from repro.mpi.request import wait_all, wait_any
from repro.simulator import Cluster


def test_blocking_send_recv_ring(run_ranks):
    def program(env):
        world = init_mpi(env)
        right = (world.rank + 1) % world.size
        left = (world.rank - 1) % world.size
        request = world.isend(np.array([world.rank]), right, tag=3)
        data = yield from world.recv(left, tag=3)
        yield from request.wait()
        return int(data[0])

    assert run_ranks(6, program) == [5, 0, 1, 2, 3, 4]


def test_recv_returns_status_when_asked(run_ranks):
    def program(env):
        world = init_mpi(env)
        if world.rank == 0:
            yield from world.send(np.zeros(11), 1, tag=42)
            return None
        if world.rank == 1:
            data, status = yield from world.recv(0, 42, return_status=True)
            return (status.source, status.tag, status.count, data.size)
        yield from env.sleep(0.0)

    results = run_ranks(3, program)
    assert results[1] == (0, 42, 11, 11)


def test_any_source_and_any_tag(run_ranks):
    def program(env):
        world = init_mpi(env)
        if world.rank == 0:
            received = []
            for _ in range(2):
                data, status = yield from world.recv(ANY_SOURCE, ANY_TAG,
                                                     return_status=True)
                received.append((status.source, data))
            return sorted(received)
        yield from world.send(f"from-{world.rank}", 0, tag=world.rank)

    results = run_ranks(3, program)
    assert results[0] == [(1, "from-1"), (2, "from-2")]


def test_proc_null_operations_complete_immediately(run_ranks):
    def program(env):
        world = init_mpi(env)
        send_request = world.isend("ignored", PROC_NULL)
        recv_request = world.irecv(PROC_NULL)
        assert send_request.test() and recv_request.test()
        data = yield from world.recv(PROC_NULL)
        assert data is None
        return True

    assert all(run_ranks(2, program))


def test_iprobe_and_probe(run_ranks):
    def program(env):
        world = init_mpi(env)
        if world.rank == 0:
            flag, status = world.iprobe(1, 5)
            assert not flag and status is None
            status = yield from world.probe(ANY_SOURCE, 5)
            assert status.source == 1 and status.count == 4
            # Probe does not consume: the receive still matches.
            data = yield from world.recv(1, 5)
            return data.size
        if world.rank == 1:
            yield from env.sleep(20.0)
            yield from world.send(np.zeros(4), 0, tag=5)
        return None

    assert run_ranks(2, program)[0] == 4


def test_messages_from_same_sender_arrive_in_order(run_ranks):
    def program(env):
        world = init_mpi(env)
        if world.rank == 0:
            for index in range(10):
                world.isend(index, 1, tag=9)
            yield from env.sleep(0.0)
            return None
        values = []
        for _ in range(10):
            value = yield from world.recv(0, 9)
            values.append(value)
        return values

    assert run_ranks(2, program)[1] == list(range(10))


def test_sendrecv_exchanges_simultaneously(run_ranks):
    def program(env):
        world = init_mpi(env)
        partner = world.size - 1 - world.rank
        received = yield from world.sendrecv(world.rank * 11, partner,
                                             partner, sendtag=1, recvtag=1)
        return received

    assert run_ranks(4, program) == [33, 22, 11, 0]


def test_payload_is_copied_on_send(run_ranks):
    """Mutating the send buffer after isend must not corrupt the message."""

    def program(env):
        world = init_mpi(env)
        if world.rank == 0:
            buffer = np.ones(4)
            world.isend(buffer, 1, tag=0)
            buffer[:] = -1  # mutate after the nonblocking send
            yield from env.sleep(50.0)
            return None
        data = yield from world.recv(0, 0)
        return float(data.sum())

    assert run_ranks(2, program)[1] == pytest.approx(4.0)


def test_wait_all_and_wait_any_helpers(run_ranks):
    def program(env):
        world = init_mpi(env)
        if world.rank == 0:
            requests = [world.irecv(source, tag=1) for source in (1, 2, 3)]
            index = yield from wait_any(env, requests)
            assert index in (0, 1, 2)
            values = yield from wait_all(env, requests)
            assert request_test_all(requests)
            return sorted(values)
        yield from env.sleep(float(world.rank) * 5)
        yield from world.send(world.rank * 100, 0, tag=1)
        return None

    assert run_ranks(4, program)[0] == [100, 200, 300]


def test_communication_respects_context_separation(run_ranks):
    """Messages on different communicators never match each other."""

    def program(env):
        world = init_mpi(env)
        duplicate = yield from world.dup()
        if world.rank == 0:
            world.isend("on-world", 1, tag=7)
            duplicate.isend("on-dup", 1, tag=7)
            yield from env.sleep(0.0)
            return None
        from_dup = yield from duplicate.recv(0, 7)
        from_world = yield from world.recv(0, 7)
        return (from_world, from_dup)

    results = run_ranks(2, program)
    assert results[1] == ("on-world", "on-dup")
