"""Tests of context-ID masks and the tuple context IDs of Section VI."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.context import ContextIdPool, TupleContextId, lowest_set_bit


def test_fresh_pool_has_everything_free():
    pool = ContextIdPool(bits=128)
    assert pool.free_count() == 128
    assert pool.lowest_free() == 0
    assert pool.is_free(0) and pool.is_free(127)


def test_acquire_and_release_cycle():
    pool = ContextIdPool(bits=64)
    pool.acquire(0)
    assert not pool.is_free(0)
    assert pool.lowest_free() == 1
    pool.acquire(1)
    assert pool.lowest_free() == 2
    pool.release(0)
    assert pool.lowest_free() == 0
    assert pool.free_count() == 63


def test_double_acquire_and_release_rejected():
    pool = ContextIdPool(bits=16)
    pool.acquire(3)
    with pytest.raises(ValueError):
        pool.acquire(3)
    pool.release(3)
    with pytest.raises(ValueError):
        pool.release(3)


def test_out_of_range_ids_rejected():
    pool = ContextIdPool(bits=16)
    with pytest.raises(ValueError):
        pool.acquire(16)
    with pytest.raises(ValueError):
        pool.is_free(-1)


def test_pool_requires_at_least_two_ids():
    with pytest.raises(ValueError):
        ContextIdPool(bits=1)


def test_exhausted_pool_raises():
    pool = ContextIdPool(bits=2)
    pool.acquire(0)
    pool.acquire(1)
    with pytest.raises(RuntimeError):
        pool.lowest_free()


def test_lowest_set_bit():
    assert lowest_set_bit(1) == 0
    assert lowest_set_bit(0b1010000) == 4
    with pytest.raises(RuntimeError):
        lowest_set_bit(0)


def test_mask_array_roundtrip():
    pool = ContextIdPool(bits=256)
    for context_id in (0, 5, 63, 64, 100, 255):
        pool.acquire(context_id)
    words = pool.mask_array()
    assert words.dtype == np.uint64
    assert words.size == pool.mask_words()
    assert ContextIdPool.mask_from_array(words) == pool.mask


def test_band_of_masks_models_agreement():
    """The lowest common free bit is free on every participant."""
    pools = [ContextIdPool(bits=64) for _ in range(4)]
    pools[0].acquire(0)
    pools[1].acquire(1)
    pools[2].acquire(0)
    pools[2].acquire(2)
    reduced = pools[0].mask
    for pool in pools[1:]:
        reduced &= pool.mask
    common = ContextIdPool.common_lowest_free(reduced)
    assert common == 3
    for pool in pools:
        assert pool.is_free(common)


@given(st.sets(st.integers(min_value=0, max_value=127), max_size=60))
@settings(max_examples=60)
def test_property_lowest_free_is_really_lowest(acquired):
    pool = ContextIdPool(bits=128)
    for context_id in acquired:
        pool.acquire(context_id)
    if len(acquired) == 128:
        return
    lowest = pool.lowest_free()
    assert lowest not in acquired
    assert all(candidate in acquired for candidate in range(lowest))


# ---------------------------------------------------------------------------
# Tuple context IDs (Section VI).
# ---------------------------------------------------------------------------

def test_tuple_context_child_for_subrange():
    parent = TupleContextId(a=7, b=2, f=4, l=19, c=0)
    child = parent.child_for_range(3, 8)
    assert child == TupleContextId(a=7, b=2, f=7, l=12, c=1)


def test_tuple_context_duplicate_of_parent_differs():
    parent = TupleContextId(a=1, b=0, f=0, l=15, c=2)
    duplicate = parent.child_for_range(0, 15)
    assert duplicate.f == parent.f and duplicate.l == parent.l
    assert duplicate != parent
    assert duplicate.c == parent.c + 1


def test_tuple_context_is_hashable_and_ordered_fields():
    ctx = TupleContextId(a=3, b=1, f=0, l=7, c=0)
    assert ctx.as_tuple() == (3, 1, 0, 7, 0)
    assert len({ctx, TupleContextId(3, 1, 0, 7, 0)}) == 1


@given(st.integers(0, 50), st.integers(0, 50), st.integers(0, 20), st.data())
@settings(max_examples=50)
def test_property_nested_ranges_never_collide_with_parent(a, b, f, data):
    l = f + data.draw(st.integers(min_value=1, max_value=30))
    parent = TupleContextId(a=a, b=b, f=f, l=l, c=0)
    new_first = data.draw(st.integers(min_value=0, max_value=l - f - 1))
    new_last = data.draw(st.integers(min_value=new_first, max_value=l - f))
    child = parent.child_for_range(new_first, new_last)
    assert child != parent
    assert parent.f <= child.f <= child.l <= parent.l
