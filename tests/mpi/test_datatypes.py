"""Tests of MPI constants, datatypes and reduction operators."""

import numpy as np
import pytest

from repro.mpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    BOR,
    BYTE,
    DOUBLE,
    INT,
    LONG,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROC_NULL,
    PROD,
    SUM,
    UNDEFINED,
)


def test_sentinels_are_distinct_negative():
    sentinels = {ANY_SOURCE, ANY_TAG, PROC_NULL, UNDEFINED}
    # ANY_SOURCE and ANY_TAG share the MPI convention of -1.
    assert len({ANY_SOURCE, PROC_NULL, UNDEFINED}) == 3
    assert all(s < 0 for s in sentinels)


def test_datatype_sizes():
    assert DOUBLE.size_bytes == 8
    assert INT.size_bytes == 4
    assert LONG.size_bytes == 8
    assert BYTE.size_bytes == 1
    assert DOUBLE.np_dtype == np.dtype(np.float64)


def test_sum_and_prod_on_scalars_and_arrays():
    assert SUM(2, 3) == 5
    assert PROD(2, 3) == 6
    np.testing.assert_array_equal(SUM(np.array([1, 2]), np.array([3, 4])),
                                  np.array([4, 6]))


def test_min_max_on_scalars_and_arrays():
    assert MIN(4, 9) == 4
    assert MAX(4, 9) == 9
    np.testing.assert_array_equal(MIN(np.array([1, 5]), np.array([3, 2])),
                                  np.array([1, 2]))
    np.testing.assert_array_equal(MAX(np.array([1, 5]), np.array([3, 2])),
                                  np.array([3, 5]))


def test_bitwise_operators():
    assert BAND(0b1100, 0b1010) == 0b1000
    assert BOR(0b1100, 0b1010) == 0b1110
    a = np.array([0b11, 0b10], dtype=np.uint64)
    b = np.array([0b01, 0b11], dtype=np.uint64)
    np.testing.assert_array_equal(BAND(a, b), np.array([0b01, 0b10], dtype=np.uint64))


def test_minloc_maxloc_pairs():
    assert MINLOC((3.0, 7), (5.0, 2)) == (3.0, 7)
    assert MAXLOC((3.0, 7), (5.0, 2)) == (5.0, 2)
    # Ties keep the first argument (stable).
    assert MINLOC((3.0, 1), (3.0, 2)) == (3.0, 1)


def test_operators_are_associative_over_samples():
    rng = np.random.default_rng(0)
    values = rng.integers(1, 10, size=6).tolist()
    for op in (SUM, PROD, MIN, MAX):
        left = op(op(values[0], values[1]), values[2])
        right = op(values[0], op(values[1], values[2]))
        assert left == right


def test_op_repr_and_call():
    assert "SUM" in repr(SUM)
    assert SUM.commutative
    assert callable(SUM)
