"""Tests of MPI process groups (explicit and range storage formats)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.datatypes import UNDEFINED
from repro.mpi.group import GroupFormat, MpiGroup


def test_incl_preserves_order():
    group = MpiGroup.incl([5, 2, 9])
    assert group.size == 3
    assert group.world_ranks() == [5, 2, 9]
    assert group.translate(0) == 5
    assert group.translate(2) == 9
    assert group.rank_of(2) == 1
    assert group.format == GroupFormat.EXPLICIT


def test_incl_rejects_duplicates():
    with pytest.raises(ValueError):
        MpiGroup.incl([1, 2, 1])


def test_range_incl_single_range():
    group = MpiGroup.range_incl([(4, 9, 1)])
    assert group.size == 6
    assert group.world_ranks() == [4, 5, 6, 7, 8, 9]
    assert group.format == GroupFormat.RANGE
    assert group.as_contiguous_range() == (4, 9)


def test_range_incl_with_stride():
    group = MpiGroup.range_incl([(0, 10, 2)])
    assert group.world_ranks() == [0, 2, 4, 6, 8, 10]
    assert group.rank_of(6) == 3
    assert group.rank_of(5) == UNDEFINED
    assert group.as_contiguous_range() is None


def test_range_incl_multiple_ranges():
    group = MpiGroup.range_incl([(0, 2), (10, 11)])
    assert group.world_ranks() == [0, 1, 2, 10, 11]
    assert group.translate(3) == 10
    assert group.rank_of(11) == 4
    assert group.as_contiguous_range() is None
    assert group.range_count() == 2


def test_range_incl_rejects_overlapping_ranges():
    with pytest.raises(ValueError):
        MpiGroup.range_incl([(0, 5), (3, 8)])


def test_range_incl_rejects_bad_ranges():
    with pytest.raises(ValueError):
        MpiGroup.range_incl([(5, 2)])
    with pytest.raises(ValueError):
        MpiGroup.range_incl([(0, 4, 0)])


def test_contiguous_constructor():
    group = MpiGroup.contiguous(3, 7)
    assert group.world_ranks() == [3, 4, 5, 6, 7]
    assert group.as_contiguous_range() == (3, 7)


def test_explicit_contiguous_detection():
    assert MpiGroup.incl([2, 3, 4]).as_contiguous_range() == (2, 4)
    assert MpiGroup.incl([2, 4, 3]).as_contiguous_range() is None
    assert MpiGroup.incl([2, 4, 6]).as_contiguous_range() is None


def test_constructor_requires_exactly_one_source():
    with pytest.raises(ValueError):
        MpiGroup()
    with pytest.raises(ValueError):
        MpiGroup(explicit=[1], ranges=[(0, 1)])


def test_translate_out_of_range():
    group = MpiGroup.contiguous(0, 3)
    with pytest.raises(IndexError):
        group.translate(4)
    with pytest.raises(ValueError):
        group.translate(-1)


def test_contains_and_len_and_eq():
    a = MpiGroup.contiguous(1, 4)
    b = MpiGroup.incl([1, 2, 3, 4])
    assert len(a) == 4
    assert a.contains(2)
    assert not a.contains(0)
    assert a == b
    assert hash(a) == hash(b)
    assert a != MpiGroup.incl([1, 2, 3])


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=40,
                unique=True))
def test_property_explicit_translate_roundtrip(ranks):
    group = MpiGroup.incl(ranks)
    for local, world in enumerate(ranks):
        assert group.translate(local) == world
        assert group.rank_of(world) == local
    assert group.rank_of(max(ranks) + 1) == UNDEFINED


@given(st.integers(min_value=0, max_value=100),
       st.integers(min_value=0, max_value=50),
       st.integers(min_value=1, max_value=7))
@settings(max_examples=80)
def test_property_range_equals_explicit(first, extra, stride):
    last = first + extra * stride
    range_group = MpiGroup.range_incl([(first, last, stride)])
    explicit_group = MpiGroup.incl(list(range(first, last + 1, stride)))
    assert range_group.world_ranks() == explicit_group.world_ranks()
    assert range_group.size == explicit_group.size
    for local in range(range_group.size):
        assert range_group.translate(local) == explicit_group.translate(local)
    # Membership queries agree on a window around the range.
    for world in range(max(0, first - 2), last + 3):
        assert range_group.rank_of(world) == explicit_group.rank_of(world)
