"""Node-aware vendor collectives (``VendorModel.node_aware``).

Real vendor MPIs ship SMP-optimised collectives, so the simulated native-MPI
baseline uses the node-leader schedules on hierarchical machines for Intel
and IBM MPI.  Flat machines must stay on the historical topology-blind path
bit-identically, and the generic vendor stays topology-blind everywhere.
"""

import dataclasses

import numpy as np
import pytest

from repro.mpi import init_mpi
from repro.mpi.vendor import GENERIC, IBM_MPI, INTEL_MPI
from repro.simulator import HierarchicalParams, Placement, run_program


def _collective_times(params=None, placement=None, vendor="intel", *,
                      operation="reduce", num_ranks=32, words=256):
    def program(env):
        world = init_mpi(env, vendor=vendor)
        payload = np.zeros(words)
        start = env.now
        if operation == "reduce":
            request = world.ireduce(payload)
        elif operation == "bcast":
            request = world.ibcast(payload if world.rank == 0 else None)
        elif operation == "allreduce":
            request = world.iallreduce(payload)
        else:  # barrier
            request = world.ibarrier()
        yield from env.wait_until(request.test)
        return env.now - start

    result = run_program(num_ranks, program, params=params,
                         placement=placement)
    return max(result.results), result.total_time


def test_default_flags():
    assert INTEL_MPI.node_aware and IBM_MPI.node_aware
    assert not GENERIC.node_aware


@pytest.mark.parametrize("operation", ["bcast", "reduce", "allreduce"])
@pytest.mark.parametrize("vendor", [INTEL_MPI, IBM_MPI, GENERIC])
def test_flat_machines_are_bit_identical(operation, vendor):
    """node_aware is inert on flat machines: forcing the flag off must not
    change a single bit of the simulated time."""
    blind = dataclasses.replace(vendor, node_aware=False)
    aware = dataclasses.replace(vendor, node_aware=True)
    assert _collective_times(vendor=blind, operation=operation) == \
        _collective_times(vendor=aware, operation=operation)


@pytest.mark.parametrize("operation", ["reduce", "allreduce"])
def test_node_aware_vendor_wins_on_cyclic_hierarchical_machine(operation):
    """On a cyclic placement the binomial tree crosses node boundaries on its
    cheap low-distance edges; the node-leader schedule sends one message per
    node instead and must be faster."""
    params = HierarchicalParams.supermuc_like(ranks_per_node=8)
    placement = Placement.cyclic(32, 4)
    blind = dataclasses.replace(INTEL_MPI, node_aware=False)
    aware_time, _ = _collective_times(params, placement, INTEL_MPI,
                                      operation=operation)
    blind_time, _ = _collective_times(params, placement, blind,
                                      operation=operation)
    assert aware_time < blind_time


def test_generic_vendor_stays_topology_blind_on_hierarchical_machines():
    params = HierarchicalParams.supermuc_like(ranks_per_node=8)
    placement = Placement.cyclic(32, 4)
    blind_generic = dataclasses.replace(GENERIC, node_aware=False)
    assert _collective_times(params, placement, GENERIC, operation="reduce") \
        == _collective_times(params, placement, blind_generic,
                             operation="reduce")
    # ... and opting the generic vendor in changes its hierarchical times.
    aware_generic = dataclasses.replace(GENERIC, node_aware=True)
    assert _collective_times(params, placement, aware_generic,
                             operation="reduce") \
        != _collective_times(params, placement, GENERIC, operation="reduce")


def test_barrier_switches_only_on_shared_nic_machines():
    placement = Placement.cyclic(32, 4)
    blind = dataclasses.replace(INTEL_MPI, node_aware=False)

    # Private per-rank ports: dissemination stays the default for node-aware
    # vendors too (its log p rounds beat the tree barrier's 2 log p).
    ports = HierarchicalParams.supermuc_like(ranks_per_node=8)
    assert _collective_times(ports, placement, INTEL_MPI, operation="barrier") \
        == _collective_times(ports, placement, blind, operation="barrier")

    # One shared NIC per node: the dissemination barrier serialises all eight
    # ranks of a node on one port, and the node-aware tree barrier must win.
    nic = HierarchicalParams.supermuc_like(ranks_per_node=8, ports_per_node=1)
    aware_time, _ = _collective_times(nic, placement, INTEL_MPI,
                                      operation="barrier")
    blind_time, _ = _collective_times(nic, placement, blind,
                                      operation="barrier")
    assert aware_time < blind_time
