"""Scatter, scatterv and reduce-scatter on the simulated native-MPI layer."""

import numpy as np
import pytest

from repro.mpi import SUM, MAX, init_mpi


SIZES = [1, 2, 4, 7]


@pytest.mark.parametrize("p", SIZES)
def test_mpi_scatter_roundtrip_with_gather(run_ranks, p):
    def program(env):
        comm = init_mpi(env)
        values = [r * 3 for r in range(p)] if comm.rank == 0 else None
        mine = yield from comm.scatter(values, root=0)
        back = yield from comm.gather(mine, root=0)
        return mine, back

    results = run_ranks(p, program)
    for rank, (mine, back) in enumerate(results):
        assert mine == rank * 3
        if rank == 0:
            assert back == [r * 3 for r in range(p)]
        else:
            assert back is None


def test_mpi_scatterv_variable_sizes(run_ranks):
    p = 5

    def program(env):
        comm = init_mpi(env)
        values = None
        if comm.rank == p - 1:
            values = [np.arange(r + 1, dtype=np.float64) for r in range(p)]
        mine = yield from comm.scatterv(values, root=p - 1)
        return int(np.asarray(mine).size)

    assert run_ranks(p, program) == [1, 2, 3, 4, 5]


@pytest.mark.parametrize("vendor", ["generic", "intel", "ibm"])
def test_mpi_reduce_scatter_all_vendors(run_ranks, vendor):
    p = 6
    n = 30

    def program(env):
        comm = init_mpi(env, vendor=vendor)
        contribution = np.full(n, float(comm.rank + 1))
        block = yield from comm.reduce_scatter(contribution, SUM)
        return np.asarray(block)

    results = run_ranks(p, program)
    total = float(sum(range(1, p + 1)))
    assert np.allclose(np.concatenate(results), np.full(n, total))


def test_mpi_reduce_scatter_with_max(run_ranks):
    p = 4
    n = 16

    def program(env):
        comm = init_mpi(env)
        contribution = np.arange(n, dtype=np.float64) * (comm.rank + 1)
        block = yield from comm.reduce_scatter(contribution, MAX)
        return np.asarray(block)

    results = run_ranks(p, program)
    expected = np.arange(n, dtype=np.float64) * p
    assert np.allclose(np.concatenate(results), expected)


def test_mpi_nonblocking_scatter_progresses_via_test(run_ranks):
    p = 5

    def program(env):
        comm = init_mpi(env)
        values = list(range(p)) if comm.rank == 0 else None
        request = comm.iscatter(values, root=0)
        polls = 0
        while not request.test():
            polls += 1
            yield from env.sleep(1.0)
        return request.result(), polls

    results = run_ranks(p, program)
    assert [value for value, _ in results] == list(range(p))
    assert any(polls > 0 for _, polls in results[1:])


def test_mpi_scatter_on_sub_communicator(run_ranks):
    """Scatter works on a communicator created with comm_create_group."""
    from repro.mpi import MpiGroup

    def program(env):
        comm = init_mpi(env)
        group = MpiGroup.contiguous(2, 5)
        if comm.rank < 2 or comm.rank > 5:
            return None
        sub = yield from comm.create_group(group)
        values = [c * 2 for c in range(sub.size)] if sub.rank == 0 else None
        mine = yield from sub.scatter(values, root=0)
        return mine

    results = run_ranks(8, program)
    for rank, value in enumerate(results):
        if 2 <= rank <= 5:
            assert value == (rank - 2) * 2
        else:
            assert value is None
