"""Tests of the vendor cost models."""

import pytest

from repro.mpi.vendor import GENERIC, IBM_MPI, INTEL_MPI, VENDORS, VendorModel, get_vendor


def test_registry_contains_all_models():
    assert set(VENDORS) == {"generic", "intel", "ibm"}
    assert VENDORS["intel"] is INTEL_MPI
    assert VENDORS["ibm"] is IBM_MPI
    assert VENDORS["generic"] is GENERIC


def test_get_vendor_by_name_case_insensitive():
    assert get_vendor("Intel") is INTEL_MPI
    assert get_vendor("IBM") is IBM_MPI
    assert get_vendor(GENERIC) is GENERIC


def test_get_vendor_unknown_name():
    with pytest.raises(KeyError):
        get_vendor("cray")


def test_group_construction_cost_is_linear_in_group_size():
    for model in (GENERIC, INTEL_MPI, IBM_MPI):
        small = model.group_construction_cost(100)
        large = model.group_construction_cost(1000)
        assert large > small
        slope = (large - small) / 900
        assert slope == pytest.approx(model.group_construction_per_rank)


def test_split_cost_is_linear_in_parent_size():
    for model in (GENERIC, INTEL_MPI, IBM_MPI):
        assert model.split_local_cost(2048) > model.split_local_cost(64)


def test_ibm_create_group_dwarfs_intel():
    """Fig. 5: IBM's create_group is slower by orders of magnitude."""
    for size in (1024, 4096, 32768):
        assert IBM_MPI.group_construction_cost(size) > \
            20 * INTEL_MPI.group_construction_cost(size)


def test_word_factor_defaults_to_one():
    assert GENERIC.word_factor("bcast") == 1.0
    assert GENERIC.word_factor("nonexistent-op") == 1.0
    assert INTEL_MPI.word_factor("reduce") > 1.0
    assert IBM_MPI.word_factor("scan") > 1.0


def test_models_are_immutable():
    with pytest.raises(Exception):
        INTEL_MPI.group_construction_per_rank = 0.0


def test_custom_model_round_trip():
    model = VendorModel(
        name="Test MPI",
        group_construction_per_rank=1.0,
        group_construction_base=10.0,
        split_local_per_rank=2.0,
        split_base=20.0,
    )
    assert model.group_construction_cost(5) == 15.0
    assert model.split_local_cost(5) == 30.0
    assert get_vendor(model) is model
