"""Unit contracts of the critical-path walker on hand-built traces."""

from __future__ import annotations

import pytest

from repro.obs import TraceRecorder, critical_path


def test_unfinalized_trace_rejected():
    with pytest.raises(ValueError):
        critical_path(TraceRecorder(2))


def test_empty_trace_is_all_idle():
    trace = TraceRecorder(2).finalize(10.0, [4.0, 10.0], {})
    report = critical_path(trace)
    assert report.complete
    assert report.total == 10.0
    assert report.grouped_totals() == {"idle": 10.0}


def test_edge_decomposition_and_exact_total():
    # Rank 0 computes [0, 2], posts a send at 2 that starts at 3 (send-port
    # wait), is on the wire [3, 5] and arrives at rank 1 at 6 (receive-port
    # wait); rank 1 then computes [6, 10].
    trace = TraceRecorder(2)
    trace.spans.append((0, 0.0, 2.0, "compute", "setup"))
    trace.edges.append((0, 1, 2.0, 0.0, 3.0, 5.0, 6.0, 8))
    trace.spans.append((1, 6.0, 10.0, "compute", "work"))
    trace.finalize(10.0, [2.0, 10.0], {})

    report = critical_path(trace)
    assert report.complete
    assert report.total == 10.0
    grouped = report.grouped_totals()
    assert grouped["compute"] == pytest.approx(6.0)
    assert grouped["comm"] == pytest.approx(2.0)          # wire time
    assert grouped["port_contention"] == pytest.approx(2.0)  # both port waits
    # Segments come back in chronological order: rank 0's compute and send
    # first, rank 1's receive wait and compute last.
    ranks = [segment.rank for segment in report.segments]
    assert ranks == [0, 0, 0, 1, 1]
    categories = [segment.category for segment in report.segments]
    assert categories == ["compute", "port_wait_send", "wire",
                          "port_wait_recv", "compute"]


def test_makespan_rank_with_trailing_idle():
    # The last-finishing rank ends with idle time after its final span; the
    # walk must bridge it and still telescope exactly.
    trace = TraceRecorder(1)
    trace.spans.append((0, 1.0, 3.0, "collective", "scan@lockstep"))
    trace.finalize(5.0, [5.0], {})
    report = critical_path(trace)
    assert report.complete
    assert report.total == 5.0
    grouped = report.grouped_totals()
    assert grouped["comm"] == pytest.approx(2.0)
    assert grouped["idle"] == pytest.approx(3.0)
