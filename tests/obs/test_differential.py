"""The observability layer's hard contract: recording perturbs nothing.

Every tier of the execution stack — scalar state machines, SPMD lockstep
analytic pricing, analytic fast-forward and the batched jquick level tier —
must produce bit-identical ``simulated_us``, event counts, message counts
and per-rank finish times whether a :class:`repro.obs.TraceRecorder` is
attached or not.  The critical-path analyzer's makespan must telescope to
the run's total time *exactly* (no float re-summation), and the honest
lockstep refusal must fire at the same virtual time traced and untraced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import collective_program
from repro.mpi import init_mpi
from repro.obs import critical_path, format_report
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.simulator.costmodel import HierarchicalParams
from repro.simulator.errors import RankFailedError
from repro.sorting import JQuickConfig, RbcBackend, jquick
from repro.sorting.jquick import JQUICK_BATCH_MIN_RANKS


def _assert_bit_identical(off, on):
    assert off.total_time == on.total_time
    assert off.events_processed == on.events_processed
    assert off.stats.messages_sent == on.stats.messages_sent
    assert off.stats.words_sent == on.stats.words_sent
    assert off.finish_times == on.finish_times
    assert off.trace is None and on.trace is not None


def _assert_critpath_exact(result):
    report = critical_path(result.trace)
    assert report.complete
    # Exact equality is the contract: the walk telescopes total_time minus
    # the final cursor instead of summing segment durations.
    assert report.total == result.total_time
    assert sum(report.grouped_totals().values()) == pytest.approx(report.total)
    assert format_report(report)  # renders without error
    return report


def _run_collective(trace, *, lockstep, repetitions=1, sync_each=False):
    cluster = Cluster(16, HierarchicalParams.two_tier(ranks_per_node=4),
                      trace=trace)
    return cluster.run(collective_program, operation="scan", impl="rbc",
                       vendor="generic", words=8, repetitions=repetitions,
                       lockstep=lockstep, sync_each=sync_each)


def test_scalar_tier_bit_identical():
    off = _run_collective(None, lockstep=False)
    on = _run_collective(True, lockstep=False)
    _assert_bit_identical(off, on)
    assert on.obs["scalar_collectives"] > 0
    assert on.obs["phases_lockstep"] == 0
    report = _assert_critpath_exact(on)
    assert "comm" in report.grouped_totals()
    # The scalar tier runs real sends, so the trace carries message edges
    # and the comm-creation charge appears as its own category.
    assert len(on.trace.edges) > 0
    assert any(span[3] == "comm_create" for span in on.trace.spans)


def test_lockstep_and_fastforward_tiers_bit_identical():
    off = _run_collective(None, lockstep=True)
    on = _run_collective(True, lockstep=True)
    _assert_bit_identical(off, on)
    # The harness barrier fast-forwards, the timed scan prices in lockstep.
    assert on.obs["phases_lockstep"] > 0
    assert on.obs["phases_fastforward"] > 0
    assert on.obs["scalar_collectives"] == 0
    _assert_critpath_exact(on)
    labels = {span[4] for span in on.trace.spans}
    assert any(label.endswith("@lockstep") for label in labels)


def test_batched_jquick_tier_bit_identical():
    p = JQUICK_BATCH_MIN_RANKS
    rng = np.random.default_rng(5)
    values = rng.integers(0, 1000, size=p).astype(np.float64)

    def program(env, *, local_data, config):
        world_mpi = init_mpi(env)
        world_rbc = yield from create_rbc_comm(world_mpi)
        output, stats = yield from jquick(env, RbcBackend(world_rbc),
                                          local_data, config)
        return env.now, output, stats.as_dict()

    def run(trace):
        parts = [values[rank:rank + 1].copy() for rank in range(p)]
        cluster = Cluster(p, trace=trace)
        return cluster.run(program,
                           config=JQuickConfig(seed=17, batch_levels=True),
                           rank_kwargs=[dict(local_data=part)
                                        for part in parts])

    off = run(None)
    on = run(True)
    _assert_bit_identical(off, on)
    for rank in range(p):
        assert off.results[rank][0] == on.results[rank][0]
        assert np.array_equal(off.results[rank][1], on.results[rank][1])
    assert on.obs["phases_batched"] > 0
    _assert_critpath_exact(on)
    labels = {span[4] for span in on.trace.spans}
    assert "jqlevel@batched" in labels


def test_honest_refusal_bit_identical_and_recorded():
    """A lockstep refusal fires at the same time traced and untraced, is
    counted once, and leaves a refusal event in the trace."""

    def run(trace):
        cluster = Cluster(16, HierarchicalParams.two_tier(ranks_per_node=4),
                          trace=trace)
        with pytest.raises(RankFailedError) as info:
            cluster.run(collective_program, operation="scan", impl="rbc",
                        vendor="generic", words=8, repetitions=3,
                        lockstep=True, sync_each=True)
        return info.value, cluster

    error_off, cluster_off = run(None)
    error_on, cluster_on = run(True)
    assert str(error_off) == str(error_on)
    assert cluster_off.engine._now == cluster_on.engine._now
    assert cluster_on._obs_snapshot()["lockstep_refusals"] == 1
    refusals = [event for event in cluster_on.trace.events
                if event[2] == "refusal"]
    assert len(refusals) == 1


def test_trace_spans_cover_all_categories_once():
    """No double coverage: comm-create charges appear as ``comm_create``
    spans only, never additionally as the engine's generic compute span."""
    result = _run_collective(True, lockstep=False)
    creates = [span for span in result.trace.spans
               if span[3] == "comm_create"]
    computes = [span for span in result.trace.spans
                if span[3] == "compute"]
    assert creates
    create_intervals = {(span[0], span[1], span[2]) for span in creates}
    for span in computes:
        assert (span[0], span[1], span[2]) not in create_intervals
