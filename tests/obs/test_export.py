"""Exporter round-trip and CLI contracts for :mod:`repro.obs`."""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.harness import collective_program
from repro.obs import (
    JSONL_SCHEMA,
    TraceRecorder,
    critical_path,
    dump_jsonl,
    load_jsonl,
    loads_jsonl,
    to_chrome_trace,
    write_jsonl,
)
from repro.obs.__main__ import main as obs_main
from repro.simulator import Cluster

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
times = finite.filter(lambda value: value >= 0.0)
words = st.integers(min_value=0, max_value=1 << 40)
labels = st.text(min_size=0, max_size=20)


@st.composite
def traces(draw):
    num_ranks = draw(st.integers(min_value=1, max_value=8))
    rank = st.integers(min_value=0, max_value=num_ranks - 1)
    trace = TraceRecorder(num_ranks)
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        t0 = draw(times)
        trace.spans.append((draw(rank), t0, t0 + draw(times),
                            draw(st.sampled_from(("compute", "collective",
                                                  "comm_create"))),
                            draw(labels)))
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        post = draw(times)
        start = post + draw(times)
        leave = start + draw(times)
        trace.edges.append((draw(rank), draw(rank), post, draw(times),
                            start, leave, leave + draw(times), draw(words)))
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        trace.events.append((draw(times), draw(rank),
                             draw(st.sampled_from(("ir", "refusal",
                                                   "fallback"))),
                             draw(labels)))
    trace.finalize(draw(times),
                   [draw(times) for _ in range(num_ranks)],
                   {"scalar_collectives": draw(st.integers(0, 99))})
    return trace


@settings(max_examples=60, deadline=None)
@given(traces())
def test_jsonl_round_trip_exact(trace):
    buffer = io.StringIO()
    dump_jsonl(trace, buffer)
    back = loads_jsonl(buffer.getvalue())
    assert back.num_ranks == trace.num_ranks
    assert back.spans == trace.spans
    assert back.edges == trace.edges
    assert back.events == trace.events
    assert back.total_time == trace.total_time
    assert back.finish_times == trace.finish_times
    assert back.counters == trace.counters


def test_loads_jsonl_rejects_garbage():
    with pytest.raises(ValueError):
        loads_jsonl("")
    with pytest.raises(ValueError):
        loads_jsonl('{"schema": "something-else/v9"}')
    good_header = json.dumps({"schema": JSONL_SCHEMA, "num_ranks": 1,
                              "total_time": 0.0, "finish_times": [0.0],
                              "counters": {}})
    with pytest.raises(ValueError):
        loads_jsonl(good_header + '\n{"t": "mystery"}')


def _traced_run():
    cluster = Cluster(8, trace=True)
    return cluster.run(collective_program, operation="bcast", impl="rbc",
                       vendor="generic", words=16, lockstep=False)


def test_chrome_trace_structure():
    result = _traced_run()
    payload = to_chrome_trace(result.trace)
    events = payload["traceEvents"]
    phases = {event["ph"] for event in events}
    assert "X" in phases          # spans and edge wire slices
    assert {"s", "f"} <= phases   # flow arrows for message edges
    assert "M" in phases          # per-rank thread names
    json.dumps(payload)           # fully serialisable


def test_cli_timeline_critpath_summary(tmp_path, capsys):
    result = _traced_run()
    trace_path = tmp_path / "run.trace.jsonl"
    write_jsonl(result.trace, str(trace_path))

    assert obs_main(["summary", str(trace_path)]) == 0
    assert obs_main(["critpath", str(trace_path)]) == 0
    out_path = tmp_path / "run.chrome.json"
    assert obs_main(["timeline", str(trace_path), "-o", str(out_path)]) == 0
    output = capsys.readouterr().out
    assert "critical path" in output.lower() or "total" in output.lower()
    with open(out_path) as handle:
        assert json.load(handle)["traceEvents"]

    # Reloading the artifact reproduces the exact makespan.
    reloaded = load_jsonl(str(trace_path))
    assert critical_path(reloaded).total == result.total_time
