"""Table I conformance: every operation and class of the RBC library exists.

The paper's Table I lists the blocking operations, nonblocking operations and
classes of RBC.  This test checks that the reproduction exposes each of them
under the paper's name (as well as the snake_case equivalent).
"""

import inspect

import pytest

import repro.core as core
import repro.rbc as rbc

TABLE_I_BLOCKING = [
    "Bcast", "Reduce", "Scan", "Gather", "Gatherv", "Barrier",
    "Send", "Recv", "Probe", "Wait", "Waitall",
    "Create_RBC_Comm", "Split_RBC_Comm", "Comm_rank", "Comm_size",
]

TABLE_I_NONBLOCKING = [
    "Ibcast", "Ireduce", "Iscan", "Igather", "Igatherv", "Ibarrier",
    "Isend", "Irecv", "Iprobe", "Test",
]

TABLE_I_CLASSES = ["Request", "Comm"]

SNAKE_CASE_API = [
    "bcast", "reduce", "scan", "gather", "gatherv", "barrier",
    "ibcast", "ireduce", "iscan", "igather", "igatherv", "ibarrier",
    "send", "recv", "probe", "iprobe", "isend", "irecv",
    "create_rbc_comm", "split_rbc_comm", "comm_rank", "comm_size",
    "test", "test_all", "wait", "wait_all",
]


@pytest.mark.parametrize("name", TABLE_I_BLOCKING + TABLE_I_NONBLOCKING)
def test_table_i_operation_exists_and_is_callable(name):
    assert hasattr(rbc, name), f"rbc::{name} missing"
    assert callable(getattr(rbc, name))


@pytest.mark.parametrize("name", TABLE_I_CLASSES)
def test_table_i_class_exists(name):
    assert hasattr(rbc, name)
    assert inspect.isclass(getattr(rbc, name))


@pytest.mark.parametrize("name", SNAKE_CASE_API)
def test_snake_case_api_exists(name):
    assert hasattr(rbc, name), f"rbc.{name} missing"
    assert callable(getattr(rbc, name))


def test_aliases_point_to_the_same_objects():
    assert rbc.Ibcast is rbc.ibcast
    assert rbc.Split_RBC_Comm is rbc.split_rbc_comm
    assert rbc.Comm is rbc.RbcComm
    assert rbc.Request is rbc.RbcRequest
    assert rbc.Waitall is rbc.wait_all


def test_core_reexports_the_full_rbc_api():
    for name in TABLE_I_BLOCKING + TABLE_I_NONBLOCKING + TABLE_I_CLASSES:
        assert hasattr(core, name), f"repro.core.{name} missing"


def test_icomm_create_group_proposal_present():
    assert callable(rbc.icomm_create_group)
    assert callable(rbc.icomm_create)


def test_all_list_is_accurate():
    for name in rbc.__all__:
        assert hasattr(rbc, name), f"__all__ lists missing attribute {name}"
