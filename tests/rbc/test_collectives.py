"""RBC collective operations on ranges, tags and overlap semantics."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, SUM, init_mpi
from repro.rbc import collectives as coll
from repro.rbc import create_rbc_comm, wait_all
from repro.simulator import Cluster


def _world(env):
    world_mpi = init_mpi(env)
    world = yield from create_rbc_comm(world_mpi)
    return world


SIZES = [1, 2, 3, 5, 8, 13]


@pytest.mark.parametrize("p", SIZES)
def test_blocking_collectives_on_full_range(run_ranks, p):
    def program(env):
        world = yield from _world(env)
        root = p // 2
        value = yield from coll.bcast(world, world.rank if world.rank == root else None, root)
        total = yield from coll.reduce(world, world.rank, SUM, root=0)
        prefix = yield from coll.scan(world, 1, SUM)
        gathered = yield from coll.gather(world, world.rank, root=root)
        yield from coll.barrier(world)
        return value, total, prefix, gathered

    results = run_ranks(p, program)
    for rank, (value, total, prefix, gathered) in enumerate(results):
        assert value == p // 2
        assert prefix == rank + 1
        if rank == 0:
            assert total == p * (p - 1) // 2
        if rank == p // 2:
            assert gathered == list(range(p))


def test_collectives_on_sub_range_use_rbc_ranks(run_ranks):
    def program(env):
        world = yield from _world(env)
        sub = yield from world.split(3, 7)
        if sub.rank is None:
            return None
        # Root is RBC rank 0 == MPI rank 3.
        value = yield from coll.bcast(sub, "root" if sub.rank == 0 else None, 0)
        total = yield from coll.allreduce(sub, 1, SUM)
        return value, total

    results = run_ranks(10, program)
    for rank, value in enumerate(results):
        if 3 <= rank <= 7:
            assert value == ("root", 5)
        else:
            assert value is None


def test_gatherv_variable_sized_contributions(run_ranks):
    def program(env):
        world = yield from _world(env)
        payload = np.arange(world.rank, dtype=np.float64)
        gathered = yield from coll.gatherv(world, payload, root=0)
        if world.rank == 0:
            return [chunk.size for chunk in gathered]
        return None

    assert run_ranks(5, program)[0] == [0, 1, 2, 3, 4]


def test_exscan_and_allgather_extensions(run_ranks):
    def program(env):
        world = yield from _world(env)
        exclusive = yield from coll.exscan(world, world.rank + 1, SUM)
        listing = yield from coll.allgather(world, world.rank * 2)
        return exclusive, listing

    results = run_ranks(6, program)
    for rank, (exclusive, listing) in enumerate(results):
        assert listing == [2 * r for r in range(6)]
        assert exclusive == (None if rank == 0 else rank * (rank + 1) // 2)


def test_disjoint_subcomms_run_collectives_concurrently(run_ranks):
    """Fig. 1: both halves broadcast simultaneously without interfering."""

    def program(env):
        world = yield from _world(env)
        size = world.size
        if world.rank < size // 2:
            half = yield from world.split(0, size // 2 - 1)
            expected = "left"
        else:
            half = yield from world.split(size // 2, size - 1)
            expected = "right"
        value = yield from coll.bcast(
            half, expected if half.rank == 0 else None, 0)
        return value == expected

    assert all(run_ranks(8, program))


def test_overlapping_comms_need_distinct_tags(run_ranks):
    """Two RBC communicators overlapping on more than one process may run
    simultaneous collectives only with distinct (user-provided) tags —
    exactly the restriction Section V-A describes."""

    def program(env):
        world = yield from _world(env)
        # Both communicators contain ranks 1..3 (overlap on 3 > 1 processes).
        a = yield from world.split(0, 3)
        b = yield from world.split(1, 4)
        requests = []
        if a.rank is not None:
            requests.append(coll.ibcast(a, "A" if a.rank == 0 else None, 0, tag=101))
        if b.rank is not None:
            requests.append(coll.ibcast(b, "B" if b.rank == 0 else None, 0, tag=202))
        values = yield from wait_all(env, requests)
        return values

    results = run_ranks(5, program)
    assert results[0] == ["A"]
    for rank in (1, 2, 3):
        assert results[rank] == ["A", "B"]
    assert results[4] == ["B"]


def test_nonblocking_collective_progresses_only_via_test(run_ranks):
    """The request is a state machine: repeated rbc::Test calls drive it to
    completion without ever blocking (Fig. 1's usage pattern)."""

    def program(env):
        world = yield from _world(env)
        request = coll.ibcast(world, 7 if world.rank == 0 else None, 0)
        polls = 0
        while not request.test():
            polls += 1
            yield from env.sleep(1.0)
        return request.result(), polls

    results = run_ranks(6, program)
    assert all(value == 7 for value, _ in results)
    # At least one non-root rank needed several polls (it really was nonblocking).
    assert any(polls > 0 for _, polls in results[1:])


def test_consecutive_collectives_same_comm(run_ranks):
    """A process may start the next collective as soon as it completed the
    previous one locally (Section V-D)."""

    def program(env):
        world = yield from _world(env)
        first = yield from coll.scan(world, 1, SUM)
        second = yield from coll.scan(world, 10, SUM)
        third = yield from coll.bcast(world, "x" if world.rank == 0 else None, 0)
        return first, second, third

    results = run_ranks(7, program)
    for rank, (first, second, third) in enumerate(results):
        assert first == rank + 1
        assert second == 10 * (rank + 1)
        assert third == "x"


def test_reduce_with_numpy_payloads_and_custom_root(run_ranks):
    def program(env):
        world = yield from _world(env)
        result = yield from coll.reduce(world, np.full(4, float(world.rank)),
                                        SUM, root=2)
        return None if result is None else result.tolist()

    results = run_ranks(5, program)
    assert results[2] == [10.0, 10.0, 10.0, 10.0]
    assert all(results[r] is None for r in (0, 1, 3, 4))


def test_collective_on_comm_without_membership_raises(run_ranks):
    def program(env):
        world = yield from _world(env)
        sub = yield from world.split(0, 1)
        if world.rank >= 2:
            with pytest.raises(ValueError):
                coll.ibcast(sub, None, 0)
            return "raised"
        value = yield from coll.bcast(sub, "ok" if sub.rank == 0 else None, 0)
        return value

    results = run_ranks(4, program)
    assert results == ["ok", "ok", "raised", "raised"]


def test_endpoint_cache_is_bounded(run_ranks):
    """Tag-per-instance traffic cannot grow the per-comm endpoint cache
    without limit; it is FIFO-bounded and still serves repeated tags."""
    from repro.rbc.collectives import _EP_CACHE_MAX, _endpoint

    def program(env):
        world = yield from _world(env)
        for tag in range(3 * _EP_CACHE_MAX):
            _endpoint(world, tag)
        assert len(world._ep_cache) == _EP_CACHE_MAX
        # FIFO: the newest tags survive, the oldest were evicted.
        newest = 3 * _EP_CACHE_MAX - 1
        assert newest in world._ep_cache
        assert 0 not in world._ep_cache
        # A cached tag is served as the same object (no rebuild).
        assert _endpoint(world, newest) is world._ep_cache[newest]
        # Re-requesting an evicted tag still works (rebuilt, re-cached).
        assert _endpoint(world, 0).tag == 0
        return len(world._ep_cache)

    assert run_ranks(2, program) == [_EP_CACHE_MAX, _EP_CACHE_MAX]


def test_rbc_barrier_synchronises(run_cluster):
    def program(env):
        world = yield from _world(env)
        if world.rank == 2:
            yield from env.sleep(100.0)
        yield from coll.barrier(world)
        return env.now

    results = run_cluster(6, program).results
    assert all(t >= 100.0 for t in results)
