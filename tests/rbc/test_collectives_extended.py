"""Extended collective operations on sub-ranges, strided ranges and overlaps.

Covers the operations added beyond Table I (scatter(v), allgatherv,
reduce_scatter, the large-input broadcast/allreduce algorithms) in the
situations that are specific to RBC: non-zero first ranks, strided ranges,
overlapping communicators with user tags, and janus-style membership in two
communicators at once.
"""

import numpy as np
import pytest

from repro.mpi import SUM, init_mpi
from repro.rbc import collectives as coll
from repro.rbc import create_rbc_comm, wait_all
from repro.rbc import tags as rbc_tags


def _world(env):
    world_mpi = init_mpi(env)
    world = yield from create_rbc_comm(world_mpi)
    return world


# ---------------------------------------------------------------------------
# New operations on sub-ranges (RBC rank != MPI rank).
# ---------------------------------------------------------------------------

def test_scatter_on_sub_range_uses_rbc_ranks(run_ranks):
    def program(env):
        world = yield from _world(env)
        sub = yield from world.split(2, 6)
        if sub.rank is None:
            return None
        values = [f"v{i}" for i in range(sub.size)] if sub.rank == 0 else None
        mine = yield from coll.scatter(sub, values, root=0)
        return mine

    results = run_ranks(9, program)
    for rank, value in enumerate(results):
        if 2 <= rank <= 6:
            assert value == f"v{rank - 2}"
        else:
            assert value is None


def test_reduce_scatter_on_sub_range(run_ranks):
    def program(env):
        world = yield from _world(env)
        sub = yield from world.split(1, 5)
        if sub.rank is None:
            return None
        contribution = np.ones(10) * (sub.rank + 1)
        block = yield from coll.reduce_scatter(sub, contribution, SUM)
        return np.asarray(block)

    results = run_ranks(8, program)
    members = [r for r in results if r is not None]
    assert len(members) == 5
    combined = np.concatenate(members)
    assert np.allclose(combined, np.full(10, 1 + 2 + 3 + 4 + 5))


def test_allgatherv_on_strided_range(run_ranks):
    def program(env):
        world = yield from _world(env)
        # Even MPI ranks 0, 2, 4, 6 form a strided RBC communicator.
        sub = yield from world.split(0, 6, stride=2)
        if sub.rank is None:
            return None
        gathered = yield from coll.allgatherv(sub, world.rank * 10)
        return gathered

    results = run_ranks(8, program)
    for rank, value in enumerate(results):
        if rank % 2 == 0 and rank <= 6:
            assert value == [0, 20, 40, 60]
        else:
            assert value is None


def test_large_bcast_on_sub_range_with_nonzero_root(run_ranks):
    n = 600

    def program(env):
        world = yield from _world(env)
        sub = yield from world.split(3, 9)
        if sub.rank is None:
            return None
        root = 2  # RBC rank 2 == MPI rank 5
        value = np.arange(n, dtype=np.float64) if sub.rank == root else None
        result = yield from coll.bcast(sub, value, root=root,
                                       algorithm="scatter_allgather")
        return float(np.sum(result))

    results = run_ranks(12, program)
    expected = float(np.sum(np.arange(n)))
    for rank, value in enumerate(results):
        if 3 <= rank <= 9:
            assert value == expected
        else:
            assert value is None


def test_pipeline_bcast_on_strided_range(run_ranks):
    n = 500

    def program(env):
        world = yield from _world(env)
        sub = yield from world.split(1, 7, stride=3)  # MPI ranks 1, 4, 7
        if sub.rank is None:
            return None
        value = np.linspace(0, 1, n) if sub.rank == 0 else None
        result = yield from coll.bcast(sub, value, root=0, algorithm="pipeline",
                                       segment_words=64)
        return np.allclose(result, np.linspace(0, 1, n))

    results = run_ranks(9, program)
    assert [r for r in results if r is not None] == [True, True, True]


# ---------------------------------------------------------------------------
# Overlapping communicators and simultaneous operations.
# ---------------------------------------------------------------------------

def test_simultaneous_scatter_on_overlapping_comms_with_user_tags(run_ranks):
    def program(env):
        world = yield from _world(env)
        a = yield from world.split(0, 4)
        b = yield from world.split(2, 6)
        requests, labels = [], []
        if a.rank is not None:
            values = [f"a{i}" for i in range(a.size)] if a.rank == 0 else None
            requests.append(coll.iscatter(a, values, root=0, tag=11))
            labels.append("a")
        if b.rank is not None:
            values = [f"b{i}" for i in range(b.size)] if b.rank == 0 else None
            requests.append(coll.iscatter(b, values, root=0, tag=22))
            labels.append("b")
        values = yield from wait_all(env, requests)
        return dict(zip(labels, values))

    results = run_ranks(7, program)
    for rank, received in enumerate(results):
        if rank <= 4:
            assert received["a"] == f"a{rank}"
        if 2 <= rank <= 6:
            assert received["b"] == f"b{rank - 2}"


def test_janus_style_membership_runs_two_allreduces_concurrently(run_ranks):
    """A process belonging to two overlapping groups progresses both
    nonblocking allreduces purely via Test, like a janus process."""

    def program(env):
        world = yield from _world(env)
        left = yield from world.split(0, 3)
        right = yield from world.split(3, 6)
        requests = []
        if left.rank is not None:
            requests.append(coll.iallreduce(left, 1, SUM, tag=31))
        if right.rank is not None:
            requests.append(coll.iallreduce(right, 10, SUM, tag=32))
        totals = yield from wait_all(env, requests)
        return totals

    results = run_ranks(7, program)
    assert results[3] == [4, 40]          # the janus process sees both groups
    assert results[0] == [4]
    assert results[6] == [40]


def test_mixed_algorithm_collectives_back_to_back(run_ranks):
    """Binomial, ring and scatter-allgather collectives may follow each other
    on the same communicator (Section V-D's consecutive-collectives rule)."""

    def program(env):
        world = yield from _world(env)
        vector = np.full(64, float(world.rank))
        ring = yield from coll.allreduce(world, vector, SUM, algorithm="ring")
        small = yield from coll.allreduce(world, 1, SUM)
        bcasted = yield from coll.bcast(world, ring if world.rank == 0 else None,
                                        root=0, algorithm="scatter_allgather")
        return float(ring[0]), small, float(np.asarray(bcasted)[0])

    p = 6
    results = run_ranks(p, program)
    expected_sum = float(sum(range(p)))
    for ring0, small, bcast0 in results:
        assert ring0 == expected_sum
        assert small == p
        assert bcast0 == expected_sum


# ---------------------------------------------------------------------------
# Failure modes and argument validation.
# ---------------------------------------------------------------------------

def test_reduce_scatter_rejects_matrix_payloads(run_ranks):
    def program(env):
        world = yield from _world(env)
        with pytest.raises(ValueError):
            coll.ireduce_scatter(world, np.zeros((4, 4)))
        return True

    assert all(run_ranks(3, program))


def test_pipeline_bcast_rejects_bad_segment_size(run_ranks):
    def program(env):
        world = yield from _world(env)
        if world.rank == 0:
            with pytest.raises(ValueError):
                coll.ibcast(world, np.zeros(16), 0, algorithm="pipeline",
                            segment_words=0)
        return True

    assert all(run_ranks(2, program))


def test_scatter_allgather_bcast_rejects_matrix_on_root(run_ranks):
    def program(env):
        world = yield from _world(env)
        if world.rank == 0:
            with pytest.raises(ValueError):
                coll.ibcast(world, np.zeros((8, 8)), 0,
                            algorithm="scatter_allgather")
        return True

    assert all(run_ranks(4, program))


def test_new_reserved_tags_are_registered():
    for tag in (rbc_tags.SCATTER_TAG, rbc_tags.SCATTERV_TAG,
                rbc_tags.REDUCE_SCATTER_TAG, rbc_tags.ALLGATHERV_TAG):
        assert tag in rbc_tags.RESERVED_TAGS
        assert rbc_tags.is_reserved_tag(tag)
    assert len(rbc_tags.RESERVED_TAGS) == len({
        tag for tag in rbc_tags.RESERVED_TAGS})


def test_comm_methods_delegate_to_module_functions(run_ranks):
    """The RbcComm convenience methods expose the extended operations too."""

    def program(env):
        world = yield from _world(env)
        values = [i * i for i in range(world.size)] if world.rank == 0 else None
        mine = yield from world.scatter(values, root=0)
        gathered = yield from world.allgatherv(mine)
        block = yield from world.reduce_scatter(np.ones(world.size * 2), SUM)
        return mine, gathered, np.asarray(block).tolist()

    p = 5
    results = run_ranks(p, program)
    for rank, (mine, gathered, block) in enumerate(results):
        assert mine == rank * rank
        assert gathered == [i * i for i in range(p)]
        assert block == [float(p), float(p)]
