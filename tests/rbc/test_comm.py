"""RBC communicator creation, splitting, rank translation and strided ranges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import init_mpi
from repro.rbc import RBC_CREATE_OPS, RbcComm, comm_rank, comm_size, create_rbc_comm
from repro.simulator import Cluster


def test_create_rbc_comm_covers_whole_mpi_comm(run_ranks):
    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        return comm_rank(world), comm_size(world), world.first, world.last

    results = run_ranks(6, program)
    for rank, (rbc_rank, size, first, last) in enumerate(results):
        assert rbc_rank == rank
        assert size == 6
        assert (first, last) == (0, 5)


def test_create_is_local_and_constant_time(run_cluster):
    """Creating / splitting RBC communicators sends no messages and costs a
    constant amount of local work regardless of the communicator size."""

    def program(env):
        world_mpi = init_mpi(env)
        start = env.now
        world = yield from create_rbc_comm(world_mpi)
        sub = yield from world.split(0, world.size // 2)
        subsub = yield from sub.split(0, sub.size - 1)
        return env.now - start

    from repro.simulator import NetworkParams

    small = run_cluster(4, program)
    large = run_cluster(64, program)
    assert small.stats.messages_sent == 0
    assert large.stats.messages_sent == 0
    assert max(large.results) == pytest.approx(max(small.results))
    expected = 3 * RBC_CREATE_OPS * NetworkParams.default().gamma
    assert max(large.results) == pytest.approx(expected)


def test_split_translates_ranks(run_ranks):
    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        sub = yield from world.split(2, 5)
        return sub.rank, sub.size, sub.first, sub.last

    results = run_ranks(8, program)
    for rank, (sub_rank, size, first, last) in enumerate(results):
        assert size == 4 and (first, last) == (2, 5)
        if 2 <= rank <= 5:
            assert sub_rank == rank - 2
        else:
            assert sub_rank is None


def test_nested_splits_compose(run_ranks):
    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        outer = yield from world.split(4, 11)      # MPI ranks 4..11
        if outer.rank is None:
            return None
        inner = yield from outer.split(2, 5)       # MPI ranks 6..9
        return inner.first, inner.last, inner.rank

    results = run_ranks(12, program)
    for rank, value in enumerate(results):
        if rank < 4:
            assert value is None
        else:
            first, last, inner_rank = value
            assert (first, last) == (6, 9)
            assert inner_rank == (rank - 6 if 6 <= rank <= 9 else None)


def test_strided_range(run_ranks):
    """Footnote 2 of the paper: strided ranges are supported."""

    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        evens = world.split_local(0, world.size - 2, stride=2)
        return evens.size, evens.rank, [evens.to_mpi(i) for i in range(evens.size)]

    results = run_ranks(8, program)
    for rank, (size, rbc_rank, members) in enumerate(results):
        assert size == 4
        assert members == [0, 2, 4, 6]
        assert rbc_rank == (rank // 2 if rank % 2 == 0 else None)


def test_strided_split_of_strided_comm(run_ranks):
    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        evens = world.split_local(0, world.size - 2, stride=2)   # 0,2,4,...
        every_fourth = evens.split_local(0, evens.size - 1, stride=2)  # 0,4,8,...
        return [every_fourth.to_mpi(i) for i in range(every_fourth.size)]

    results = run_ranks(16, program)
    assert results[0] == [0, 4, 8, 12]


def test_rank_translation_errors():
    class FakeMpi:
        size = 8
        rank = 0

        class env:  # noqa: N801 - minimal stub
            pass

    comm = RbcComm.__new__(RbcComm)
    comm.mpi_comm = FakeMpi()
    comm.first, comm.last, comm.stride = 2, 6, 2
    assert comm.size == 3
    assert comm.to_mpi(1) == 4
    assert comm.from_mpi(6) == 2
    assert comm.from_mpi(3) is None
    assert comm.from_mpi(7) is None
    with pytest.raises(ValueError):
        comm.to_mpi(3)


def test_invalid_ranges_rejected(run_ranks):
    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        with pytest.raises(ValueError):
            world.split_local(5, 2)
        with pytest.raises(ValueError):
            world.split_local(0, world.size)   # beyond the MPI communicator
        with pytest.raises(ValueError):
            world.split_local(0, 1, stride=0)
        return True

    assert all(run_ranks(4, program))


@given(st.integers(min_value=1, max_value=64), st.data())
@settings(max_examples=40, deadline=None)
def test_property_rank_translation_roundtrip(size, data):
    first = data.draw(st.integers(min_value=0, max_value=size - 1))
    last = data.draw(st.integers(min_value=first, max_value=size - 1))
    stride = data.draw(st.integers(min_value=1, max_value=4))
    last = first + ((last - first) // stride) * stride

    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        sub = world.split_local(first, last, stride)
        ok = True
        for rbc_rank in range(sub.size):
            mpi_rank = sub.to_mpi(rbc_rank)
            ok &= sub.from_mpi(mpi_rank) == rbc_rank
            ok &= first <= mpi_rank <= last
        return ok

    results = Cluster(size).run(program).results
    assert all(results)
