"""Tests of the Section VI proposal: nonblocking (range-based) communicator creation."""

import pytest

from repro.mpi import SUM, MpiGroup, init_mpi
from repro.mpi.context import TupleContextId
from repro.rbc import ensure_tuple_context, icomm_create, icomm_create_group
from repro.simulator import Cluster


def test_range_case_completes_locally_without_communication(run_cluster):
    """A contiguous range of the parent: constant time, zero messages."""

    def program(env):
        world = init_mpi(env)
        group = MpiGroup.contiguous(0, world.size // 2 - 1)
        if world.rank >= world.size // 2:
            yield from env.sleep(0.0)
            return None
        request = icomm_create_group(world, group, tag=3)
        # Completes immediately: no other rank has done anything yet.
        assert request.test()
        comm = request.result()
        return comm.size, comm.rank, comm.context_id

    result = run_cluster(8, program)
    assert result.stats.messages_sent == 0
    for rank, value in enumerate(result.results[:4]):
        size, comm_rank, context = value
        assert size == 4 and comm_rank == rank
        assert isinstance(context, TupleContextId)


def test_range_case_context_ids_follow_the_paper_formula(run_ranks):
    def program(env):
        world = init_mpi(env)
        parent_ctx = ensure_tuple_context(world)
        group = MpiGroup.contiguous(2, 5)
        if not 2 <= world.rank <= 5:
            yield from env.sleep(0.0)
            return None
        request = icomm_create_group(world, group, tag=1)
        comm = request.result()
        expected = parent_ctx.child_for_range(2, 5)
        return comm.context_id == expected

    results = run_ranks(8, program)
    assert all(value for value in results[2:6] if value is not None)


def test_new_communicators_have_distinct_contexts_and_working_collectives(run_ranks):
    def program(env):
        world = init_mpi(env)
        half = world.size // 2
        if world.rank < half:
            group = MpiGroup.contiguous(0, half - 1)
        else:
            group = MpiGroup.contiguous(half, world.size - 1)
        request = icomm_create_group(world, group, tag=7)
        comm = yield from request.wait()
        total = yield from comm.allreduce(1, SUM)
        duplicate_of_parent = icomm_create_group(
            world, MpiGroup.contiguous(0, world.size - 1), tag=8)
        # Every rank is a member of the full range, so this also completes locally.
        full = duplicate_of_parent.result()
        assert full.context_id != world.context_id
        return total, comm.context_id

    results = run_ranks(8, program)
    left_ctx = {ctx for total, ctx in results[:4]}
    right_ctx = {ctx for total, ctx in results[4:]}
    assert all(total == 4 for total, _ in results)
    assert len(left_ctx) == 1 and len(right_ctx) == 1
    assert left_ctx != right_ctx


def test_non_range_group_uses_a_broadcast(run_cluster):
    """A non-contiguous group needs one nonblocking broadcast among members."""

    def program(env):
        world = init_mpi(env)
        members = [0, 2, 5]
        if world.rank not in members:
            yield from env.sleep(0.0)
            return None
        group = MpiGroup.incl(members)
        request = icomm_create_group(world, group, tag=9)
        comm = yield from request.wait()
        assert comm.size == 3
        assert comm.context_id.a == 0            # created by the first member
        total = yield from comm.allreduce(world.rank, SUM)
        return total

    result = run_cluster(8, program)
    assert result.stats.messages_sent > 0
    values = [v for v in result.results if v is not None]
    assert values == [7, 7, 7]


def test_non_member_invocation_rejected(run_ranks):
    def program(env):
        world = init_mpi(env)
        group = MpiGroup.incl([0, 1])
        if world.rank == 2:
            with pytest.raises(ValueError):
                icomm_create_group(world, group, tag=1)
            return "rejected"
        yield from env.sleep(0.0)
        return None

    assert run_ranks(3, program)[2] == "rejected"


def test_icomm_create_over_whole_parent(run_ranks):
    """The nonblocking variant of MPI_Comm_create: every parent rank calls it,
    non-members receive None."""

    def program(env):
        world = init_mpi(env)
        group = MpiGroup.incl([1, 3, 4])
        request = icomm_create(world, group)
        comm = yield from request.wait()
        if world.rank in (1, 3, 4):
            assert comm is not None
            total = yield from comm.allreduce(1, SUM)
            return total
        assert comm is None
        return None

    results = run_ranks(6, program)
    assert [results[i] for i in (1, 3, 4)] == [3, 3, 3]
    assert results[0] is None and results[2] is None and results[5] is None


def test_icomm_create_range_case_is_local_for_members(run_cluster):
    def program(env):
        world = init_mpi(env)
        group = MpiGroup.contiguous(0, world.size - 1)
        request = icomm_create(world, group)
        assert request.test()
        comm = request.result()
        yield from env.sleep(0.0)
        return comm.size

    result = run_cluster(6, program)
    assert result.stats.messages_sent == 0
    assert result.results == [6] * 6


def test_ensure_tuple_context_is_deterministic_and_collision_free(run_ranks):
    def program(env):
        world = init_mpi(env)
        ctx_a = ensure_tuple_context(world)
        ctx_b = ensure_tuple_context(world)
        assert ctx_a == ctx_b
        assert ctx_a.a < 0           # cannot collide with process-id based IDs
        yield from env.sleep(0.0)
        return ctx_a

    results = run_ranks(4, program)
    assert len(set(results)) == 1
