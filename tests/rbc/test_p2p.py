"""RBC point-to-point communication, probing and wildcard semantics."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, init_mpi
from repro.rbc import create_rbc_comm
from repro.rbc import p2p as rbc_p2p


def _make_world(env):
    world_mpi = init_mpi(env)
    world = yield from create_rbc_comm(world_mpi)
    return world


def test_send_recv_uses_rbc_ranks(run_ranks):
    def program(env):
        world = yield from _make_world(env)
        sub = yield from world.split(2, 5)          # MPI ranks 2..5
        if sub.rank is None:
            return None
        partner = sub.size - 1 - sub.rank
        request = rbc_p2p.isend(sub, f"hi-{sub.rank}", partner, tag=1)
        data = yield from rbc_p2p.recv(sub, partner, 1)
        yield from request.wait()
        return data

    results = run_ranks(8, program)
    assert results[2:6] == ["hi-3", "hi-2", "hi-1", "hi-0"]
    assert results[:2] == [None, None] and results[6:] == [None, None]


def test_recv_any_source_reports_rbc_rank(run_ranks):
    def program(env):
        world = yield from _make_world(env)
        sub = yield from world.split(1, 4)
        if sub.rank is None:
            return None
        if sub.rank == 0:
            sources = []
            for _ in range(sub.size - 1):
                data, status = yield from rbc_p2p.recv(sub, ANY_SOURCE, 9,
                                                       return_status=True)
                assert data == f"msg-{status.source}"
                sources.append(status.source)
            return sorted(sources)
        yield from rbc_p2p.send(sub, f"msg-{sub.rank}", 0, tag=9)
        return None

    results = run_ranks(6, program)
    assert results[1] == [1, 2, 3]


def test_wildcard_only_matches_members_of_the_range(run_ranks):
    """A message from a process outside the RBC communicator (same MPI comm,
    same tag) must not be delivered to a wildcard receive on the range."""

    def program(env):
        world = yield from _make_world(env)
        left = yield from world.split(0, 1)
        if world.rank == 2:
            # Outsider sends to rank 0 with the same tag on the same MPI comm.
            yield from world.send("outsider", 0, tag=4)
            return None
        if world.rank == 1:
            yield from env.sleep(30.0)   # make sure the outsider arrives first
            yield from left.send("member", 0, tag=4)
            return None
        if world.rank == 0:
            data, status = yield from left.recv(ANY_SOURCE, 4, return_status=True)
            # The wildcard receive on `left` sees only the member's message.
            assert status.source == 1
            outsider = yield from world.recv(2, 4)
            return data, outsider
        yield from env.sleep(0.0)

    results = run_ranks(3, program)
    assert results[0] == ("member", "outsider")


def test_iprobe_specific_and_wildcard(run_ranks):
    def program(env):
        world = yield from _make_world(env)
        sub = yield from world.split(0, 1)
        if world.rank == 1:
            yield from env.sleep(10.0)
            yield from sub.send(np.arange(3.0), 0, tag=2)
            return None
        if world.rank == 0:
            flag, status = rbc_p2p.iprobe(sub, 1, 2)
            assert not flag
            status = yield from rbc_p2p.probe(sub, ANY_SOURCE, 2)
            assert status.source == 1 and status.count == 3
            data = yield from sub.recv(1, 2)
            return data.tolist()
        yield from env.sleep(0.0)

    assert run_ranks(3, program)[0] == [0.0, 1.0, 2.0]


def test_iprobe_wildcard_returns_false_for_foreign_message(run_ranks):
    """The paper's rule: probing ANY_SOURCE checks whether the ready message's
    sender belongs to the RBC communicator and reports false otherwise."""

    def program(env):
        world = yield from _make_world(env)
        left = yield from world.split(0, 1)
        if world.rank == 2:
            yield from world.send("foreign", 0, tag=6)
            return None
        if world.rank == 0:
            # Wait until the foreign message definitely arrived.
            yield from env.wait_until(lambda: world.iprobe(2, 6)[0])
            flag, _ = rbc_p2p.iprobe(left, ANY_SOURCE, 6)
            assert flag is False
            # Clean up the foreign message so nothing dangles.
            yield from world.recv(2, 6)
            return "checked"
        yield from env.sleep(0.0)

    assert run_ranks(3, program)[0] == "checked"


def test_irecv_wildcard_turns_into_specific_receive(run_ranks):
    def program(env):
        world = yield from _make_world(env)
        if world.rank == 0:
            request = rbc_p2p.irecv(world, ANY_SOURCE, 3)
            assert not request.test()
            yield from env.wait_until(request.test)
            status = request.get_status()
            return request.result(), status.source
        yield from env.sleep(5.0 * world.rank)
        if world.rank == 2:
            yield from world.send("late", 0, tag=3)
        return None

    payload, source = run_ranks(3, program)[0]
    assert payload == "late" and source == 2


def test_blocking_send_completes_after_buffer_is_free(run_cluster):
    def program(env):
        world = yield from _make_world(env)
        if world.rank == 0:
            start = env.now
            yield from world.send(np.zeros(1000), 1, tag=0)
            return env.now - start
        data = yield from world.recv(0, 0)
        return data.size

    from repro.simulator import NetworkParams

    result = run_cluster(2, program)
    send_duration, recv_size = result.results
    assert recv_size == 1000
    params = NetworkParams.default()
    assert send_duration >= params.alpha + 1000 * params.beta - 1e-9
