"""RBC request handles: Test, Wait, Testall, Waitall, Waitany."""

import pytest

from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm, irecv, isend, wait, wait_all, wait_any
from repro.rbc import test_all as rbc_test_all
from repro.rbc import request as rbc_request


def _world(env):
    world_mpi = init_mpi(env)
    world = yield from create_rbc_comm(world_mpi)
    return world


def test_wait_returns_received_payload(run_ranks):
    def program(env):
        world = yield from _world(env)
        if world.rank == 0:
            request = irecv(world, 1, 0)
            value = yield from wait(request)
            return value
        yield from env.sleep(10.0)
        request = isend(world, "late payload", 0, 0)
        yield from request.wait()
        return None

    assert run_ranks(2, program)[0] == "late payload"


def test_testall_and_waitall(run_ranks):
    def program(env):
        world = yield from _world(env)
        if world.rank == 0:
            requests = [irecv(world, source, 1) for source in (1, 2, 3)]
            assert rbc_request.test_all(requests) is False
            values = yield from wait_all(env, requests)
            assert rbc_test_all(requests) is True
            return sorted(values)
        yield from env.sleep(world.rank * 3.0)
        yield from world.send(world.rank, 0, tag=1)
        return None

    assert run_ranks(4, program)[0] == [1, 2, 3]


def test_wait_any_returns_first_completed(run_ranks):
    def program(env):
        world = yield from _world(env)
        if world.rank == 0:
            slow = irecv(world, 1, 0)
            fast = irecv(world, 2, 0)
            index = yield from wait_any(env, [slow, fast])
            assert index == 1                      # rank 2 sends first
            yield from wait_all(env, [slow, fast])
            return slow.result(), fast.result()
        delay = 50.0 if world.rank == 1 else 1.0
        yield from env.sleep(delay)
        yield from world.send(f"from-{world.rank}", 0, 0)
        return None

    assert run_ranks(3, program)[0] == ("from-1", "from-2")


def test_request_repr_and_done(run_ranks):
    def program(env):
        world = yield from _world(env)
        request = isend(world, 1.0, (world.rank + 1) % world.size, 0)
        text = repr(request)
        assert "RbcRequest" in text
        yield from request.wait()
        assert request.done
        value = yield from world.recv((world.rank - 1) % world.size, 0)
        return value

    assert run_ranks(3, program) == [1.0, 1.0, 1.0]


def test_status_available_after_completion(run_ranks):
    def program(env):
        world = yield from _world(env)
        if world.rank == 0:
            request = irecv(world, 1, 5)
            yield from request.wait()
            status = request.get_status()
            return status.source, status.tag, status.count
        import numpy as np
        yield from world.send(np.zeros(7), 0, tag=5)
        return None

    assert run_ranks(2, program)[0] == (1, 5, 7)
