"""Differential tests for the pluggable event cores.

The engine's observable contract is a total order over events (ascending
timestamp, insertion order among ties).  :class:`~repro.simulator.batchcore
.BatchedCore` produces that order with a bucket/calendar queue instead of the
reference tuple heap; these tests drive both cores over identical workloads —
hand-written and hypothesis-generated — and require bit-identical execution:
same step order, same timestamps, same results, same event counts, and the
same deadlocks.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator.batchcore import (
    KIND_ACTION,
    KIND_CALL,
    KIND_STEP,
    BatchedCore,
    HeapCore,
)
from repro.simulator.engine import WAIT_NOTIFY, Engine, Sleep
from repro.simulator.errors import DeadlockError

# Durations drawn from a tiny float set on purpose: equal sums of equal
# floats collide exactly, which is what exercises bucket fusion and the
# tie-order contract.
DURATIONS = [0.0, 0.5, 1.0, 1.5, 2.5]


# ---------------------------------------------------------------------------
# Sleep argument validation (regression: NaN slipped through `duration < 0`).
# ---------------------------------------------------------------------------

class TestSleepValidation:
    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            Sleep(float("nan"))

    def test_rejects_positive_infinity(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            Sleep(float("inf"))

    def test_rejects_negative_infinity(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            Sleep(float("-inf"))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="finite and non-negative"):
            Sleep(-1.0)

    def test_accepts_zero_and_coerces_to_float(self):
        command = Sleep(0)
        assert command.duration == 0.0
        assert isinstance(command.duration, float)

    def test_nan_never_reaches_the_queue(self):
        engine = Engine()

        def program():
            yield Sleep(float("nan"))

        proc = engine.add_process(program())
        with pytest.raises(Exception):
            engine.run()
        assert proc.error is not None


# ---------------------------------------------------------------------------
# Core unit behaviour.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("core_cls", [HeapCore, BatchedCore])
class TestCoreBasics:
    def test_empty_core_is_falsy(self, core_cls):
        assert not core_cls()

    def test_fifo_within_one_timestamp(self, core_cls):
        order = []
        core = core_cls()
        for i in range(5):
            core.push(1.0, KIND_ACTION, lambda i=i: order.append(i), None)
        engine = Engine(core=core)
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_time_order_across_buckets(self, core_cls):
        order = []
        core = core_cls()
        for time in (3.0, 1.0, 2.0, 1.0, 3.0):
            core.push(time, KIND_CALL, order.append, time)
        engine = Engine(core=core)
        engine.run()
        assert order == [1.0, 1.0, 2.0, 3.0, 3.0]

    def test_events_snapshot_is_sorted(self, core_cls):
        core = core_cls()
        core.push(2.0, KIND_ACTION, None, None)
        core.push(1.0, KIND_ACTION, None, None)
        core.push(2.0, KIND_CALL, None, None)
        snapshot = core.events()
        assert [event[0] for event in snapshot] == [1.0, 2.0, 2.0]
        # Within a timestamp, snapshot order is insertion order.
        assert [event[2] for event in snapshot] == \
            [KIND_ACTION, KIND_ACTION, KIND_CALL]


def test_engine_reference_flag_selects_heap_core():
    assert isinstance(Engine(reference=True).core, HeapCore)
    assert isinstance(Engine().core, BatchedCore)


def test_charge_batch_fuses_equal_times():
    engine = Engine()

    def waiter():
        yield WAIT_NOTIFY

    procs = [engine.add_process(waiter()) for _ in range(4)]
    engine.schedule_at(100.0, lambda: None)  # keep the queue non-empty
    engine.run(until=1.0)  # park everyone in WAITING
    engine.charge_batch([5.0, 5.0, 7.0, 5.0],
                        [procs[0], procs[1], procs[2], procs[3]])
    # Three wakes at t=5 share one event; the t=7 wake gets its own
    # (plus the far-future keep-alive).
    assert len(engine.core.events()) == 3
    engine.run()
    assert all(p.done for p in procs)
    assert [p.finish_time for p in procs] == [5.0, 5.0, 7.0, 5.0]


def test_charge_batch_rejects_past_times():
    engine = Engine()

    def program():
        yield Sleep(10.0)

    proc = engine.add_process(program())
    engine.run()
    with pytest.raises(ValueError, match="cannot schedule in the past"):
        engine.charge_batch([5.0], [proc])


# ---------------------------------------------------------------------------
# Hypothesis differential: random mixed workloads, both cores.
# ---------------------------------------------------------------------------

def _run_workload(scripts, *, reference):
    """Run one random workload; return its full observable trace.

    ``scripts[pid]`` is a list of actions; the interpreter logs every action
    with the virtual time it executed at.  Returns (trace, per-proc results,
    finish times, events processed, outcome) where outcome is either
    ("done", final_time) or ("deadlock", blocked_pids).
    """
    engine = Engine(reference=reference)
    trace = []
    procs = []
    extra_calls = []

    def interpret(pid, script):
        executed = 0
        for index, action in enumerate(script):
            trace.append((engine.now, pid, index, action[0]))
            kind = action[0]
            if kind == "sleep":
                yield Sleep(action[1])
            elif kind == "wait":
                yield WAIT_NOTIFY
            elif kind == "notify":
                engine.notify(procs[action[1]])
            elif kind == "call_at":
                delay, target = action[1]
                engine.schedule_call_at(
                    engine.now + delay,
                    lambda t: (extra_calls.append((engine.now, t)),
                               engine.notify(procs[t])),
                    target)
            elif kind == "batch":
                pairs = action[1]
                engine.charge_batch([engine.now + d for d, _ in pairs],
                                    [procs[t] for _, t in pairs])
            executed += 1
        return executed

    for pid, script in enumerate(scripts):
        procs.append(engine.add_process(interpret(pid, script)))

    try:
        final = engine.run()
        outcome = ("done", final)
    except DeadlockError:
        outcome = ("deadlock", tuple(p.pid for p in procs if not p.done))

    return (trace, [p.result for p in procs], [p.finish_time for p in procs],
            engine.events_processed, tuple(extra_calls), outcome)


def _scripts(num_procs):
    duration = st.sampled_from(DURATIONS)
    target = st.integers(min_value=0, max_value=num_procs - 1)
    action = st.one_of(
        st.tuples(st.just("sleep"), duration),
        st.tuples(st.just("wait"), st.just(0)),
        st.tuples(st.just("notify"), target),
        st.tuples(st.just("call_at"), st.tuples(duration, target)),
        st.tuples(st.just("batch"),
                  st.lists(st.tuples(duration, target), min_size=1,
                           max_size=3).map(tuple)),
    )
    script = st.lists(action, max_size=8)
    return st.lists(script, min_size=num_procs, max_size=num_procs)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=1, max_value=5).flatmap(_scripts))
def test_random_workloads_identical_across_cores(scripts):
    batched = _run_workload(scripts, reference=False)
    reference = _run_workload(scripts, reference=True)
    assert batched == reference
    # Sanity: every recorded timestamp is a finite float.
    for time, *_ in batched[0]:
        assert math.isfinite(time)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from(DURATIONS), min_size=1, max_size=20))
def test_zero_delay_resume_chains_identical(durations):
    """Chains of sleeps (many zero-delay) stay in one bucket pass."""

    def chain():
        for duration in durations:
            yield Sleep(duration)
        return sum(durations)

    results = {}
    for reference in (False, True):
        engine = Engine(reference=reference)
        proc = engine.add_process(chain())
        final = engine.run()
        results[reference] = (final, proc.result, proc.finish_time,
                              engine.events_processed)
    assert results[False] == results[True]
    assert results[False][0] == sum(durations)
