"""Tests of the cluster façade and rank environments."""

import numpy as np
import pytest

from repro.simulator import Cluster, DeadlockError, NetworkParams, run_program


def test_cluster_requires_positive_rank_count():
    with pytest.raises(ValueError):
        Cluster(0)


def test_ranks_see_their_rank_and_size():
    def program(env):
        yield from env.sleep(1.0)
        return (env.rank, env.size)

    result = Cluster(5).run(program)
    assert result.results == [(i, 5) for i in range(5)]


def test_cluster_is_single_use():
    def program(env):
        yield from env.sleep(0.0)

    cluster = Cluster(2)
    cluster.run(program)
    with pytest.raises(RuntimeError):
        cluster.run(program)


def test_shared_and_per_rank_arguments():
    def program(env, shared, bonus, factor=1):
        yield from env.sleep(0.0)
        return (shared, bonus * factor)

    result = Cluster(3).run(
        program, "common",
        rank_args=[(10,), (20,), (30,)],
        rank_kwargs=[{"factor": 1}, {"factor": 2}, {"factor": 3}],
    )
    assert result.results == [("common", 10), ("common", 40), ("common", 90)]


def test_finish_times_and_total_time():
    def program(env):
        yield from env.sleep(float(env.rank + 1))

    result = Cluster(4).run(program)
    assert result.finish_times == [1.0, 2.0, 3.0, 4.0]
    assert result.total_time == 4.0
    assert result.max_finish_time == 4.0


def test_compute_charges_gamma_per_operation():
    params = NetworkParams(alpha=1.0, beta=0.1, gamma=0.5)

    def program(env):
        yield from env.compute(10)   # 10 ops * 0.5 us
        return env.now

    result = Cluster(1, params).run(program)
    assert result.results[0] == pytest.approx(5.0)


def test_compute_time_charges_absolute_duration():
    def program(env):
        yield from env.compute_time(12.5)
        return env.now

    result = Cluster(1).run(program)
    assert result.results[0] == pytest.approx(12.5)


def test_point_to_point_between_ranks():
    def program(env):
        transport = env.transport
        other = 1 - env.rank
        transport.post_send(env.rank, other, tag=0, context="t",
                            payload=np.array([env.rank]))
        received = []

        def got_it():
            message = transport.take_match(env.rank, other, 0, "t")
            if message is not None:
                received.append(message.payload[0])
                return True
            return False

        yield from env.wait_until(got_it)
        return received[0]

    result = Cluster(2).run(program)
    assert result.results == [1, 0]


def test_unmatched_receive_deadlocks():
    def program(env):
        if env.rank == 0:
            yield from env.wait_until(lambda: False)
        else:
            yield from env.sleep(1.0)

    with pytest.raises(DeadlockError):
        Cluster(2).run(program)


def test_trace_statistics_collected():
    def program(env):
        if env.rank == 0:
            env.transport.post_send(0, 1, 0, "c", np.zeros(10))
        yield from env.sleep(100.0)

    result = Cluster(2).run(program)
    assert result.stats.messages_sent == 1
    assert result.stats.words_sent == 10
    assert result.stats.per_rank_messages_sent == [1, 0]
    assert result.stats.per_rank_messages_received == [0, 1]
    assert result.stats.max_messages_received() == 1
    assert result.stats.as_dict()["messages_sent"] == 1


def test_run_program_helper():
    def program(env, value):
        yield from env.sleep(1.0)
        return env.rank * value

    result = run_program(3, program, 10)
    assert result.results == [0, 10, 20]
