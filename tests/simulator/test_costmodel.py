"""Unit tests of the pluggable cost-model layer (flat + hierarchical)."""

import math

import pytest

from repro.simulator import (
    Cluster,
    CostModel,
    HierarchicalParams,
    NetworkParams,
    Placement,
)
from repro.simulator.costmodel import (
    DEFAULT_ALLREDUCE_CROSSOVER_WORDS,
    DEFAULT_BCAST_CROSSOVER_WORDS,
)


# ---------------------------------------------------------------------------
# NetworkParams validation.
# ---------------------------------------------------------------------------

def test_network_params_rejects_negative_alpha():
    with pytest.raises(ValueError, match="alpha"):
        NetworkParams(alpha=-1.0)


def test_network_params_rejects_negative_beta():
    with pytest.raises(ValueError, match="beta"):
        NetworkParams(beta=-0.5)


def test_network_params_rejects_negative_gamma():
    with pytest.raises(ValueError, match="gamma"):
        NetworkParams(gamma=-0.001)


def test_network_params_rejects_non_finite():
    with pytest.raises(ValueError, match="finite"):
        NetworkParams(alpha=float("nan"))
    with pytest.raises(ValueError, match="finite"):
        NetworkParams(beta=float("inf"))


def test_network_params_rejects_zero_cost_network():
    with pytest.raises(ValueError, match="zero"):
        NetworkParams(alpha=0.0, beta=0.0)


def test_network_params_allows_individual_zeroes():
    # A pure-bandwidth or pure-latency machine is a valid degenerate model.
    assert NetworkParams(alpha=0.0, beta=0.1).message_cost(10) == pytest.approx(1.0)
    assert NetworkParams(alpha=3.0, beta=0.0).message_cost(10) == pytest.approx(3.0)
    NetworkParams(gamma=0.0)  # free local compute is fine too


def test_network_params_is_a_cost_model():
    params = NetworkParams(alpha=2.0, beta=0.5, gamma=0.25)
    assert isinstance(params, CostModel)
    assert params.link(0, 1) == (2.0, 0.5)
    assert params.worst_link() == (2.0, 0.5)
    assert params.message_cost(4) == pytest.approx(2.0 + 4 * 0.5)
    assert params.compute_cost(8) == pytest.approx(2.0)
    assert params.bcast_crossover_words(256) == DEFAULT_BCAST_CROSSOVER_WORDS
    assert params.allreduce_crossover_words(256) == DEFAULT_ALLREDUCE_CROSSOVER_WORDS


# ---------------------------------------------------------------------------
# Placement.
# ---------------------------------------------------------------------------

def test_regular_placement_blocks_ranks():
    placement = Placement.regular(8, ranks_per_node=2, nodes_per_island=2)
    assert placement.nodes == (0, 0, 1, 1, 2, 2, 3, 3)
    assert placement.islands == (0, 0, 0, 0, 1, 1, 1, 1)
    assert placement.num_nodes() == 4
    assert placement.num_islands() == 2


def test_placement_tiers():
    placement = Placement.regular(8, ranks_per_node=2, nodes_per_island=2)
    assert placement.tier_of(0, 1) == 0      # same node
    assert placement.tier_of(0, 2) == 1      # same island, different node
    assert placement.tier_of(0, 7) == 2      # different island
    assert placement.tier_of(5, 5) == 0


def test_single_node_placement():
    placement = Placement.single_node(5)
    assert placement.num_ranks == 5
    assert all(placement.tier_of(a, b) == 0 for a in range(5) for b in range(5))


def test_placement_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        Placement(nodes=(0, 0), islands=(0,))


def test_placement_rejects_bad_shape():
    with pytest.raises(ValueError):
        Placement.regular(4, ranks_per_node=0, nodes_per_island=1)
    with pytest.raises(ValueError):
        Placement.regular(4, ranks_per_node=1, nodes_per_island=0)


def test_placement_rejects_node_spanning_islands():
    """A node is one physical box: its ranks cannot live on two islands."""
    with pytest.raises(ValueError, match=r"rank 2.*node 7.*island"):
        Placement(nodes=(7, 3, 7), islands=(0, 0, 1))
    # The error names the first offending rank, not just the node.
    with pytest.raises(ValueError, match="rank 3"):
        Placement(nodes=(0, 1, 1, 0), islands=(0, 1, 1, 1))


def test_placement_regular_ragged_last_node():
    """num_ranks % ranks_per_node != 0: the last node is smaller, not split."""
    placement = Placement.regular(10, ranks_per_node=4, nodes_per_island=2)
    assert placement.nodes == (0, 0, 0, 0, 1, 1, 1, 1, 2, 2)
    assert placement.islands == (0, 0, 0, 0, 0, 0, 0, 0, 1, 1)
    assert placement.num_nodes() == 3
    assert placement.num_islands() == 2


def test_placement_cyclic_round_robin():
    placement = Placement.cyclic(10, num_nodes=4)
    assert placement.nodes == (0, 1, 2, 3, 0, 1, 2, 3, 0, 1)
    assert placement.num_islands() == 1
    two_islands = Placement.cyclic(8, num_nodes=4, nodes_per_island=2)
    assert two_islands.islands == (0, 0, 1, 1, 0, 0, 1, 1)
    with pytest.raises(ValueError):
        Placement.cyclic(8, num_nodes=0)
    with pytest.raises(ValueError):
        Placement.cyclic(8, num_nodes=2, nodes_per_island=0)


def test_placement_shorter_than_communicator_rejected():
    """A placement covering fewer ranks than the cluster routes must fail
    loudly at construction, not index-error mid-simulation."""
    short = Placement.regular(4, ranks_per_node=2, nodes_per_island=2)
    with pytest.raises(ValueError, match="placement covers 4"):
        Cluster(6, HierarchicalParams(), placement=short)


# ---------------------------------------------------------------------------
# HierarchicalParams.
# ---------------------------------------------------------------------------

def test_hierarchical_link_selects_tier():
    params = HierarchicalParams(
        intra_node_alpha=1.0, intra_node_beta=0.001,
        inter_node_alpha=5.0, inter_node_beta=0.002,
        inter_island_alpha=9.0, inter_island_beta=0.004,
    )
    placement = Placement.regular(8, ranks_per_node=2, nodes_per_island=2)
    assert params.link(0, 1, placement) == (1.0, 0.001)
    assert params.link(0, 2, placement) == (5.0, 0.002)
    assert params.link(0, 7, placement) == (9.0, 0.004)
    # Without a placement the conservative worst link is priced.
    assert params.link(0, 1) == (9.0, 0.004)
    assert params.worst_link() == (9.0, 0.004)


def test_hierarchical_requires_ordered_alphas():
    with pytest.raises(ValueError, match="alpha"):
        HierarchicalParams(intra_node_alpha=6.0, inter_node_alpha=5.0)


def test_hierarchical_requires_ordered_betas():
    with pytest.raises(ValueError, match="beta"):
        HierarchicalParams(inter_node_beta=0.01, inter_island_beta=0.004)


def test_hierarchical_rejects_negative_parameters():
    with pytest.raises(ValueError, match="non-negative"):
        HierarchicalParams(intra_node_alpha=-0.1)


def test_hierarchical_rejects_bad_shape():
    with pytest.raises(ValueError, match="ranks_per_node"):
        HierarchicalParams(ranks_per_node=0)
    with pytest.raises(ValueError, match="nodes_per_island"):
        HierarchicalParams(nodes_per_island=-1)


def test_hierarchical_ports_per_node_validation():
    assert HierarchicalParams().ports_per_node is None
    assert HierarchicalParams(ports_per_node=2).ports_per_node == 2
    with pytest.raises(ValueError, match="ports_per_node"):
        HierarchicalParams(ports_per_node=0)
    with pytest.raises(ValueError, match="ports_per_node"):
        HierarchicalParams(ports_per_node=-1)


def test_hierarchical_tier_link():
    params = HierarchicalParams(
        intra_node_alpha=1.0, intra_node_beta=0.001,
        inter_node_alpha=2.0, inter_node_beta=0.002,
        inter_island_alpha=3.0, inter_island_beta=0.003)
    assert params.tier_link(0) == (1.0, 0.001)
    assert params.tier_link(1) == (2.0, 0.002)
    assert params.tier_link(2) == (3.0, 0.003)


def test_two_tier_preset_has_no_island_surcharge():
    params = HierarchicalParams.two_tier(ranks_per_node=8, ports_per_node=1)
    assert params.tier_link(1) == params.tier_link(2)
    assert params.ranks_per_node == 8
    assert params.ports_per_node == 1
    placement = params.default_placement(16)
    assert placement.num_nodes() == 2
    assert placement.num_islands() == 1


def test_hierarchical_default_placement_uses_shape():
    params = HierarchicalParams(ranks_per_node=4, nodes_per_island=2)
    placement = params.default_placement(16)
    assert placement.num_ranks == 16
    assert placement.num_nodes() == 4
    assert placement.num_islands() == 2


def test_hierarchical_crossovers_derive_from_links():
    params = HierarchicalParams()
    size = 256
    alpha, beta = params.worst_link()
    log_p = math.log2(size)
    expected_bcast = int(size * alpha / (beta * (log_p - 2.0)))
    expected_ring = int(size * alpha / (beta * (log_p - 1.0)))
    assert params.bcast_crossover_words(size) == expected_bcast
    assert params.allreduce_crossover_words(size) == expected_ring
    # Tiny groups fall back to the defaults (no large-input algorithms there).
    assert params.bcast_crossover_words(2) == DEFAULT_BCAST_CROSSOVER_WORDS


# ---------------------------------------------------------------------------
# Cluster integration: the cluster owns the placement.
# ---------------------------------------------------------------------------

def _pingpong_program(env, peer_of):
    transport = env.transport
    peer = peer_of[env.rank]
    if peer is None:
        return 0.0
    if env.rank < peer:
        handle = transport.post_send(env.rank, peer, 0, "t", 1.0)
        yield from env.wait_until(lambda: handle.done)
    else:
        yield from env.wait_until(
            lambda: transport.take_match(env.rank, peer, 0, "t") is not None)
    return env.now


def test_cluster_owns_default_placement():
    cluster = Cluster(8, HierarchicalParams(ranks_per_node=2, nodes_per_island=2))
    assert cluster.placement.num_nodes() == 4
    assert cluster.transport.placement is cluster.placement


def test_cluster_flat_placement_is_single_node():
    cluster = Cluster(8)
    assert cluster.placement.num_nodes() == 1
    assert cluster.placement.num_islands() == 1


def test_cluster_rejects_wrong_sized_placement():
    with pytest.raises(ValueError, match="placement"):
        Cluster(8, HierarchicalParams(), placement=Placement.single_node(4))


def test_hierarchical_times_follow_tiers():
    """The same exchange costs strictly more per widened hierarchy tier."""
    params = HierarchicalParams(
        intra_node_alpha=1.0, intra_node_beta=0.001,
        inter_node_alpha=5.0, inter_node_beta=0.002,
        inter_island_alpha=9.0, inter_island_beta=0.004,
        ranks_per_node=2, nodes_per_island=2,
    )

    def exchange(placement):
        cluster = Cluster(8, params, placement=placement)
        peer_of = {0: 1, 1: 0, **{r: None for r in range(2, 8)}}
        result = cluster.run(_pingpong_program, peer_of)
        return result.total_time

    intra = exchange(Placement.single_node(8))
    inter_node = exchange(Placement.regular(8, 1, 8))   # 8 nodes, one island
    inter_island = exchange(Placement.regular(8, 1, 1))  # one node per island
    assert intra < inter_node < inter_island
    assert intra == pytest.approx(1.0 + 1 * 0.001)
    assert inter_node == pytest.approx(5.0 + 1 * 0.002)
    assert inter_island == pytest.approx(9.0 + 1 * 0.004)


def test_hierarchical_differs_from_flat_for_same_program():
    def bcast_like(env):
        transport = env.transport
        if env.rank == 0:
            handles = [transport.post_send(0, dst, 0, "b", [1.0] * 64)
                       for dst in range(1, env.size)]
            yield from env.wait_until(lambda: all(h.done for h in handles))
        else:
            yield from env.wait_until(
                lambda: transport.take_match(env.rank, 0, 0, "b") is not None)
        return env.now

    flat = Cluster(8, NetworkParams.default()).run(bcast_like).total_time
    hier = Cluster(8, HierarchicalParams(ranks_per_node=2,
                                         nodes_per_island=2)).run(bcast_like).total_time
    assert flat != hier


# ---------------------------------------------------------------------------
# Named machine presets (fat-tree, dragonfly, registry).
# ---------------------------------------------------------------------------

def test_fat_tree_preset_is_valid_and_full_bisection():
    params = HierarchicalParams.fat_tree()
    # Full bisection: the per-word price is identical on both network tiers;
    # only the spine traversal's extra startup distinguishes them.
    assert params.inter_island_beta == params.inter_node_beta
    assert params.inter_island_alpha > params.inter_node_alpha
    assert params.intra_node_alpha < params.inter_node_alpha
    shaped = HierarchicalParams.fat_tree(ranks_per_node=4, nodes_per_pod=2,
                                         ports_per_node=1)
    placement = shaped.default_placement(16)
    assert placement.num_nodes() == 4 and placement.num_islands() == 2
    assert shaped.ports_per_node == 1


def test_dragonfly_preset_is_valid_and_tapered():
    params = HierarchicalParams.dragonfly()
    # Tapered global links: crossing groups costs more per word AND per
    # message than the all-to-all links inside a group.
    assert params.inter_island_beta > params.inter_node_beta
    assert params.inter_island_alpha > params.inter_node_alpha
    shaped = HierarchicalParams.dragonfly(ranks_per_node=2, nodes_per_group=2)
    placement = shaped.default_placement(8)
    assert placement.num_nodes() == 4 and placement.num_islands() == 2


def test_machine_preset_registry_is_complete_and_valid():
    from repro.simulator import MACHINE_PRESETS, machine_preset

    assert {"flat", "latency_bound", "bandwidth_bound", "supermuc",
            "two_tier", "shared_nic", "fat_tree", "dragonfly"} \
        == set(MACHINE_PRESETS)
    for name in MACHINE_PRESETS:
        model = machine_preset(name)
        assert isinstance(model, CostModel), name
        alpha, beta = model.worst_link()
        assert alpha >= 0 and beta >= 0
        # Every preset constructed through the registry passed validation
        # (construction raises otherwise) and prices a 1-word message.
        assert model.message_cost(1) > 0


def test_machine_preset_lookup():
    from repro.simulator import machine_preset

    assert isinstance(machine_preset("flat"), NetworkParams)
    assert machine_preset("shared_nic").ports_per_node == 1
    model = NetworkParams.bandwidth_bound()
    assert machine_preset(model) is model  # pass-through
    with pytest.raises(KeyError, match="unknown machine preset"):
        machine_preset("fat-tree")  # underscores, not dashes


# ---------------------------------------------------------------------------
# Vectorised placement paths (>= 4096 ranks switch to numpy bulk code; the
# scalar loop below the threshold is the semantic reference).
# ---------------------------------------------------------------------------

def test_large_placement_constructors_match_scalar_reference():
    for num_ranks, rpn, npi in [(4096, 1, 1), (4097, 32, 2), (8192, 7, 3)]:
        placement = Placement.regular(num_ranks, ranks_per_node=rpn,
                                      nodes_per_island=npi)
        nodes = tuple(r // rpn for r in range(num_ranks))
        assert placement.nodes == nodes
        assert placement.islands == tuple(n // npi for n in nodes)
        # Plain ints, not numpy scalars: downstream code hashes and
        # serialises these labels.
        assert type(placement.nodes[0]) is int
        assert type(placement.islands[-1]) is int

    placement = Placement.cyclic(5000, num_nodes=77, nodes_per_island=9)
    nodes = tuple(r % 77 for r in range(5000))
    assert placement.nodes == nodes
    assert placement.islands == tuple(n // 9 for n in nodes)


def test_large_placement_validation_matches_scalar_message():
    """The numpy validator must report the same first offending rank with
    the same message as the scalar dict walk."""
    nodes = [r // 8 for r in range(8192)]
    islands = [n // 16 for n in nodes]
    islands[5003] = 999  # contradicts rank 5000's island for node 625
    with pytest.raises(ValueError, match=r"rank 5003 puts node 625"):
        Placement(nodes=tuple(nodes), islands=tuple(islands))

    # Same corruption below the threshold exercises the scalar walk; both
    # must agree on the offending rank.
    with pytest.raises(ValueError, match=r"rank 50 puts node 6"):
        small_nodes = tuple(r // 8 for r in range(64))
        small_islands = list(n // 16 for n in small_nodes)
        small_islands[50] = 999
        Placement(nodes=small_nodes, islands=tuple(small_islands))


def test_large_placement_non_integer_labels_fall_back_to_scalar_walk():
    """String node labels cannot take the numpy path; the scalar walk must
    still validate (and reject) them."""
    nodes = tuple(f"node{r // 2}" for r in range(4096))
    islands = list("iA" for _ in range(4096))
    Placement(nodes=nodes, islands=tuple(islands))  # consistent: fine
    islands[99] = "iB"
    with pytest.raises(ValueError, match="rank 99"):
        Placement(nodes=nodes, islands=tuple(islands))


def test_placement_node_island_counts_are_memoised():
    placement = Placement.regular(4096, ranks_per_node=8, nodes_per_island=4)
    assert placement.num_nodes() == 512
    assert placement.num_islands() == 128
    # Memoised on the frozen dataclass via __dict__, not recomputed.
    assert placement.__dict__["_num_nodes"] == 512
    assert placement.__dict__["_num_islands"] == 128
    assert placement.num_nodes() == 512
