"""Unit tests of the discrete-event engine."""

import pytest

from repro.simulator.engine import Engine, Sleep, WaitNotify, run_processes
from repro.simulator.errors import DeadlockError, RankFailedError, SimulationLimitError


def test_empty_engine_runs_to_zero():
    engine = Engine()
    assert engine.run() == 0.0
    assert engine.now == 0.0


def test_schedule_executes_in_time_order():
    engine = Engine()
    seen = []
    engine.schedule(5.0, lambda: seen.append(("b", engine.now)))
    engine.schedule(1.0, lambda: seen.append(("a", engine.now)))
    engine.schedule(9.0, lambda: seen.append(("c", engine.now)))
    engine.run()
    assert seen == [("a", 1.0), ("b", 5.0), ("c", 9.0)]


def test_equal_timestamps_execute_in_insertion_order():
    engine = Engine()
    seen = []
    for index in range(10):
        engine.schedule(3.0, lambda i=index: seen.append(i))
    engine.run()
    assert seen == list(range(10))


def test_schedule_in_the_past_rejected():
    engine = Engine()
    engine.schedule(1.0, lambda: engine.schedule_at(0.5, lambda: None))
    with pytest.raises(ValueError):
        engine.run()


def test_sleep_advances_virtual_time():
    def program():
        yield Sleep(2.5)
        yield Sleep(1.5)
        return "done"

    engine = Engine()
    proc = engine.add_process(program())
    final = engine.run()
    assert final == 4.0
    assert proc.result == "done"
    assert proc.finish_time == 4.0


def test_negative_sleep_rejected():
    with pytest.raises(ValueError):
        Sleep(-1.0)


def test_process_return_value_captured():
    def program(value):
        yield Sleep(1.0)
        return value * 2

    results = run_processes([program(3), program(5)])
    assert results == [6, 10]


def test_wait_notify_blocks_until_notified():
    engine = Engine()
    order = []

    def waiter():
        order.append("before")
        yield WaitNotify()
        order.append(("after", engine.now))

    proc = engine.add_process(waiter())
    engine.schedule(7.0, lambda: engine.notify(proc))
    engine.run()
    assert order == ["before", ("after", 7.0)]


def test_notify_before_wait_is_remembered():
    engine = Engine()
    seen = []

    def program():
        yield Sleep(5.0)          # notification arrives while sleeping
        yield WaitNotify()        # must not block forever
        seen.append(engine.now)

    proc = engine.add_process(program())
    engine.schedule(1.0, lambda: engine.notify(proc))
    engine.run()
    assert seen == [5.0]


def test_notify_finished_process_is_ignored():
    engine = Engine()

    def program():
        yield Sleep(1.0)

    proc = engine.add_process(program())
    engine.run()
    engine.notify(proc)  # must not raise or schedule anything
    assert not engine._heap


def test_blocked_process_raises_deadlock():
    def program():
        yield WaitNotify()

    engine = Engine()
    engine.add_process(program())
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert excinfo.value.blocked_ranks == (0,)


def test_deadlock_lists_all_blocked_processes():
    def blocked():
        yield WaitNotify()

    def fine():
        yield Sleep(1.0)

    engine = Engine()
    engine.add_process(blocked())
    engine.add_process(fine())
    engine.add_process(blocked())
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert excinfo.value.blocked_ranks == (0, 2)


def test_process_exception_is_wrapped():
    def failing():
        yield Sleep(1.0)
        raise ValueError("boom")

    engine = Engine()
    engine.add_process(failing())
    with pytest.raises(RankFailedError) as excinfo:
        engine.run()
    assert excinfo.value.rank == 0
    assert isinstance(excinfo.value.original, ValueError)


def test_invalid_yield_type_rejected():
    def bad():
        yield 42

    engine = Engine()
    engine.add_process(bad())
    with pytest.raises(TypeError):
        engine.run()


def test_event_limit_enforced():
    def ping_pong():
        while True:
            yield Sleep(1.0)

    engine = Engine(max_events=100)
    engine.add_process(ping_pong())
    with pytest.raises(SimulationLimitError):
        engine.run()


def test_run_until_stops_early():
    def program():
        for _ in range(10):
            yield Sleep(1.0)

    engine = Engine()
    engine.add_process(program())
    final = engine.run(until=3.5)
    assert final == 3.5
    # The process is not finished yet.
    assert not engine.processes[0].done


def test_processes_interleave_by_time():
    log = []

    def program(name, delay):
        for step in range(3):
            yield Sleep(delay)
            log.append((name, step))

    run_processes([program("fast", 1.0), program("slow", 2.5)])
    assert log == [
        ("fast", 0), ("fast", 1), ("slow", 0), ("fast", 2), ("slow", 1), ("slow", 2),
    ]
