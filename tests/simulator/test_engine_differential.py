"""Differential tests: run-queue fast path vs. heap-only reference scheduling.

``Engine(reference=True)`` routes every process wake-up through the event
heap, exactly like the original scheduler; the default mode uses the
immediate run queue.  Because run-queue entries draw sequence numbers from
the same counter as heap events, both modes must produce *bit-identical*
simulations: same per-rank results, same simulated times, same event counts,
same message traces.  These tests prove that over representative workloads
(a fig4-style collective sweep and a fig8-style JQuick sort).
"""

import numpy as np
import pytest

from repro.bench.harness import collective_program
from repro.bench.workloads import generate
from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster, Engine, Sleep, WaitNotify
from repro.sorting import JQuickConfig, RbcBackend, jquick


def _assert_identical_runs(fast, slow):
    assert fast.total_time == slow.total_time
    assert fast.events_processed == slow.events_processed
    assert fast.finish_times == slow.finish_times
    assert fast.stats.messages_sent == slow.stats.messages_sent
    assert fast.stats.words_sent == slow.stats.words_sent
    assert fast.stats.per_rank_messages_sent == slow.stats.per_rank_messages_sent
    assert fast.stats.per_rank_messages_received == \
        slow.stats.per_rank_messages_received
    assert fast.stats.per_rank_words_received == slow.stats.per_rank_words_received


@pytest.mark.parametrize("operation", ["bcast", "reduce", "scan", "gather"])
def test_collectives_identical_across_engine_modes(operation):
    """Fig4/fig9-style workload: every collective, both engine modes."""
    results = {}
    for reference in (False, True):
        cluster = Cluster(16, reference_engine=reference)
        results[reference] = cluster.run(
            collective_program, operation=operation, impl="rbc",
            vendor="generic", words=64)
    _assert_identical_runs(results[False], results[True])
    assert results[False].results == results[True].results


def test_jquick_identical_across_engine_modes():
    """Fig8-style workload: JQuick on RBC, both engine modes."""
    p, n = 8, 512
    parts = generate("uniform", n, p, seed=7)

    def program(env, local_data):
        world_mpi = init_mpi(env, vendor="intel")
        world = yield from create_rbc_comm(world_mpi)
        output, stats = yield from jquick(env, RbcBackend(world), local_data,
                                          JQuickConfig(seed=7))
        return output, stats.distributed_steps, stats.exchange_messages_received

    runs = {}
    for reference in (False, True):
        cluster = Cluster(p, reference_engine=reference)
        runs[reference] = cluster.run(
            program, rank_kwargs=[dict(local_data=parts[r]) for r in range(p)])

    _assert_identical_runs(runs[False], runs[True])
    for (out_f, steps_f, msgs_f), (out_r, steps_r, msgs_r) in zip(
            runs[False].results, runs[True].results):
        np.testing.assert_array_equal(out_f, out_r)
        assert steps_f == steps_r
        assert msgs_f == msgs_r


def test_notify_and_timed_events_interleave_by_sequence():
    """A run-queue wake-up must not overtake a same-time heap event that was
    scheduled before it (and must run before one scheduled after it)."""
    for reference in (False, True):
        engine = Engine(reference=reference)
        log = []

        def waiter():
            while True:
                yield WaitNotify()
                log.append(("woke", engine.now))

        proc = engine.add_process(waiter())

        def at_five():
            log.append(("before-notify", engine.now))
            engine.notify(proc)                      # run-queue entry
            engine.schedule(0.0, lambda: log.append(("after-notify", engine.now)))

        engine.schedule(5.0, at_five)
        with pytest.raises(Exception):               # waiter never finishes
            engine.run()
        assert log == [("before-notify", 5.0), ("woke", 5.0),
                       ("after-notify", 5.0)], (reference, log)


def test_sleep_zero_and_notify_preserve_program_order():
    """Mixed zero-delay sleeps and notifications give one deterministic
    order, identical in both modes."""
    logs = {}
    for reference in (False, True):
        engine = Engine(reference=reference)
        log = []

        def ticker(name, delays):
            for step, delay in enumerate(delays):
                yield Sleep(delay)
                log.append((name, step, engine.now))

        engine.add_process(ticker("a", [0.0, 1.0, 0.0]))
        engine.add_process(ticker("b", [1.0, 0.0, 0.0]))
        engine.run()
        logs[reference] = log
    assert logs[False] == logs[True]


def test_events_processed_matches_reference_mode():
    """The run queue replaces heap round-trips one-for-one: the event count
    is identical, not merely close."""
    counts = {}
    for reference in (False, True):
        cluster = Cluster(8, reference_engine=reference)
        result = cluster.run(collective_program, operation="scan", impl="mpi",
                             vendor="ibm", words=256)
        counts[reference] = (result.events_processed, result.total_time)
    assert counts[False] == counts[True]
