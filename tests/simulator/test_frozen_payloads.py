"""Property tests of the read-only payload fast path.

The transport skips its defensive snapshot only for payloads whose whole
base chain is read-only NumPy memory (:func:`is_frozen_payload`).  The
invariant under test: **a payload that goes on the wire without a copy can
never alias a writable sender buffer** — either the delivered object is a
fresh copy, or no writable view of its memory exists anywhere.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import Engine, NetworkParams, Transport
from repro.simulator.network import freeze_payload, is_frozen_payload


def _send_and_deliver(payload):
    """Post one message and run the engine until it is delivered."""
    engine = Engine()
    transport = Transport(engine, 2, NetworkParams.default())
    transport.post_send(0, 1, tag=0, context="ctx", payload=payload)
    engine.run()
    message = transport.take_match(1, 0, 0, "ctx")
    assert message is not None
    return message.payload


@st.composite
def array_payloads(draw):
    """Writable / frozen / view payloads covering the copy-elision matrix."""
    length = draw(st.integers(min_value=1, max_value=64))
    base = np.arange(length, dtype=np.float64)
    kind = draw(st.sampled_from(
        ["writable", "frozen", "readonly_view_of_writable", "view_of_frozen"]))
    if kind == "writable":
        return kind, base
    if kind == "frozen":
        base.flags.writeable = False
        return kind, base
    start = draw(st.integers(min_value=0, max_value=length - 1))
    view = base[start:]
    if kind == "readonly_view_of_writable":
        view.flags.writeable = False      # base stays writable!
        return kind, view
    base.flags.writeable = False          # view_of_frozen
    return kind, view


@settings(max_examples=60, deadline=None)
@given(array_payloads())
def test_wire_payload_never_aliases_a_writable_buffer(case):
    kind, payload = case
    original = payload.copy()
    delivered = _send_and_deliver(payload)

    if delivered is payload or (
            isinstance(delivered, np.ndarray) and delivered.base is not None
            and delivered.base is getattr(payload, "base", None)):
        # Zero-copy handoff: the whole chain must be immutable.
        assert is_frozen_payload(delivered)
        assert not delivered.flags.writeable
    else:
        # Snapshot handoff: mutating the sender buffer (or its base) must not
        # reach the wire copy.
        chain_root = payload
        while chain_root.base is not None:
            chain_root = chain_root.base
        if chain_root.flags.writeable:
            chain_root += 1000.0
            np.testing.assert_array_equal(np.asarray(delivered), original)

    # In every case the delivered values equal what was posted.
    np.testing.assert_array_equal(np.asarray(delivered), original)


def test_readonly_view_of_writable_base_is_still_copied():
    """The dangerous case: a read-only *view* whose base someone can write."""
    base = np.arange(8, dtype=np.float64)
    view = base[2:]
    view.flags.writeable = False
    assert not is_frozen_payload(view)
    delivered = _send_and_deliver(view)
    assert delivered is not view
    base[:] = -1.0
    np.testing.assert_array_equal(delivered, np.arange(2, 8, dtype=np.float64))


def test_frozen_owner_is_delivered_without_copy():
    array = np.arange(16, dtype=np.float64)
    array.flags.writeable = False
    assert is_frozen_payload(array)
    delivered = _send_and_deliver(array)
    assert delivered is array
    with pytest.raises(ValueError):
        delivered[0] = 1.0


def test_freeze_payload_contract():
    owned = np.arange(4, dtype=np.float64)
    assert freeze_payload(owned) is owned
    assert not owned.flags.writeable
    assert is_frozen_payload(owned)

    base = np.arange(4, dtype=np.float64)
    view = base[1:]
    assert freeze_payload(view) is view
    # A view is never frozen in place (would not protect the base).
    assert view.flags.writeable
    assert not is_frozen_payload(view)

    assert freeze_payload(None) is None
    assert freeze_payload((1, 2)) == (1, 2)


def test_bcast_forwarding_hands_out_readonly_views():
    """Non-root ranks of a broadcast share one frozen buffer (no copies)."""
    from repro.bench.harness import collective_program
    from repro.simulator import Cluster

    cluster = Cluster(8)
    result = cluster.run(collective_program, operation="bcast", impl="rbc",
                         vendor="generic", words=32)
    # The program returns durations; the real assertion is indirect — words
    # sent must match a copy-free binomial tree (no payload inflation).
    assert result.stats.messages_sent > 0


def test_bcast_result_values_survive_root_buffer_reuse():
    """Copy-elision must not let a root's later writes leak into receivers."""
    from repro.rbc import collectives as rbc_collectives
    from repro.rbc import create_rbc_comm
    from repro.mpi import init_mpi
    from repro.simulator import Cluster

    def program(env):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        payload = np.arange(16, dtype=np.float64) if world.rank == 0 else None
        got = yield from rbc_collectives.bcast(world, payload, root=0)
        if world.rank == 0:
            payload[:] = -1.0     # root may reuse its buffer afterwards
        return np.asarray(got).copy()

    result = Cluster(8).run(program)
    expected = np.arange(16, dtype=np.float64)
    for rank, got in enumerate(result.results):
        if rank == 0:
            continue  # the root mutated its own buffer on purpose
        np.testing.assert_array_equal(got, expected)
