"""Differential tests for lazy (first-touch) mailboxes.

The transport's default mailbox store materialises a rank's mailbox on first
use instead of preallocating all ``p`` upfront — at paper scale (p = 2^15)
collective runs priced entirely in lockstep never touch a single mailbox.
The contract is purely structural: dense and lazy stores must be observably
identical in every simulation (same timings, same stats, same results), and
the number of materialised mailboxes must never exceed the number of ranks
that actually received a message.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.messaging import wait_all
from repro.mpi import init_mpi
from repro.simulator import Cluster


def _traffic_program(env, *, out_edges, in_edges):
    """Send one tagged message along every out-edge; receive every in-edge."""
    world = init_mpi(env, vendor="generic")
    sends = [world.isend(np.ones(words) * (env.rank + 1), dest, tag=tag)
             for dest, tag, words in out_edges]
    recvs = [world.irecv(source=src, tag=tag) for src, tag, words in in_edges]
    received = yield from wait_all(env, recvs)
    yield from wait_all(env, sends)
    return (env.now, tuple(float(np.sum(value)) for value in received))


def _observables(result):
    return (
        result.total_time,
        tuple(result.finish_times),
        tuple(result.results),
        result.stats.messages_sent,
        result.stats.words_sent,
        tuple(result.stats.per_rank_messages_sent),
        tuple(result.stats.per_rank_messages_received),
    )


def _run(num_ranks, edges, lazy):
    out_edges = [[] for _ in range(num_ranks)]
    in_edges = [[] for _ in range(num_ranks)]
    for tag, (src, dst, words) in enumerate(edges):
        out_edges[src].append((dst, tag, words))
        in_edges[dst].append((src, tag, words))
    cluster = Cluster(num_ranks, lazy_mailboxes=lazy)
    result = cluster.run(
        _traffic_program,
        rank_kwargs=[dict(out_edges=out_edges[r], in_edges=in_edges[r])
                     for r in range(num_ranks)])
    return cluster, result


@st.composite
def _workloads(draw):
    num_ranks = draw(st.integers(min_value=2, max_value=24))
    edges = draw(st.lists(
        st.tuples(st.integers(0, num_ranks - 1),
                  st.integers(0, num_ranks - 1),
                  st.integers(0, 16)),
        min_size=0, max_size=40))
    # Self-sends are not part of the transport contract under test.
    edges = [(s, d, w) for s, d, w in edges if s != d]
    return num_ranks, edges


@settings(max_examples=40, deadline=None)
@given(_workloads())
def test_lazy_equals_dense(workload):
    num_ranks, edges = workload
    _, dense = _run(num_ranks, edges, lazy=False)
    lazy_cluster, lazy = _run(num_ranks, edges, lazy=True)
    assert _observables(dense) == _observables(lazy)
    receivers = {dst for _, dst, _ in edges}
    assert lazy_cluster.transport.mailboxes_materialized() <= len(receivers)


def test_no_traffic_materialises_nothing():
    cluster = Cluster(8, lazy_mailboxes=True)

    def program(env):
        yield from env.compute_time(1.0)
        return env.now

    result = cluster.run(program)
    assert result.total_time == 1.0
    assert cluster.transport.mailboxes_materialized() == 0


def test_dense_store_materialises_everything_upfront():
    cluster = Cluster(8, lazy_mailboxes=False)
    assert cluster.transport.mailboxes_materialized() == 8


@pytest.mark.parametrize("lazy", [False, True])
def test_wildcard_receives_work_on_both_stores(lazy):
    """ANY_SOURCE matching walks the transport path, not the exact-key fast
    path — it must behave identically whether or not the mailbox store is
    materialised on first touch."""

    def program(env):
        world = init_mpi(env, vendor="generic")
        if env.rank == 0:
            values = []
            for _ in range(world.size - 1):
                value, status = yield from world.recv(return_status=True)
                values.append((status.source, float(value)))
            return tuple(sorted(values))
        yield from world.send(float(env.rank), dest=0, tag=env.rank)
        return None

    result = Cluster(5, lazy_mailboxes=lazy).run(program)
    assert result.results[0] == tuple((r, float(r)) for r in range(1, 5))
