"""Unit tests of the alpha-beta transport and message matching."""

import numpy as np
import pytest

from repro.simulator.engine import Engine
from repro.simulator.network import (
    ANY_SOURCE,
    ANY_TAG,
    NetworkParams,
    Transport,
    payload_words,
)


@pytest.fixture
def setup():
    engine = Engine()
    params = NetworkParams(alpha=10.0, beta=0.5, gamma=0.1)
    transport = Transport(engine, num_ranks=4, params=params)
    return engine, transport, params


# ---------------------------------------------------------------------------
# payload_words
# ---------------------------------------------------------------------------

def test_payload_words_none_is_zero():
    assert payload_words(None) == 0


def test_payload_words_scalar_is_one():
    assert payload_words(3.5) == 1
    assert payload_words(7) == 1


def test_payload_words_numpy_counts_elements():
    assert payload_words(np.zeros(17)) == 17
    assert payload_words(np.zeros((3, 5))) == 15


def test_payload_words_containers_recurse():
    assert payload_words([np.zeros(4), np.zeros(6)]) == 10
    assert payload_words((1.0, np.zeros(3))) == 4
    assert payload_words({"a": np.zeros(2)}) == 3  # value words + 1 per key


def test_payload_words_object_fallback():
    class Thing:
        pass

    assert payload_words(Thing()) == 1


# ---------------------------------------------------------------------------
# Cost model.
# ---------------------------------------------------------------------------

def test_message_cost_formula():
    params = NetworkParams(alpha=3.0, beta=0.25)
    assert params.message_cost(0) == 3.0
    assert params.message_cost(100) == 3.0 + 25.0


def test_single_message_arrival_time(setup):
    engine, transport, params = setup
    transport.post_send(src=0, dst=1, tag=0, context="c", payload=np.zeros(10))
    engine.run()
    message = transport.find_match(1, 0, 0, "c")
    assert message is not None
    assert message.arrival_time == pytest.approx(params.alpha + 10 * params.beta)


def test_send_port_serialises_consecutive_sends(setup):
    engine, transport, params = setup
    transport.post_send(0, 1, 0, "c", np.zeros(10))
    transport.post_send(0, 2, 0, "c", np.zeros(10))
    engine.run()
    first = transport.find_match(1, 0, 0, "c")
    second = transport.find_match(2, 0, 0, "c")
    cost = params.alpha + 10 * params.beta
    assert first.arrival_time == pytest.approx(cost)
    # The second message only starts once the first left the send port.
    assert second.arrival_time == pytest.approx(2 * cost)


def test_recv_port_serialises_incast(setup):
    engine, transport, params = setup
    transport.post_send(1, 0, 0, "c", np.zeros(100))
    transport.post_send(2, 0, 0, "c", np.zeros(100))
    engine.run()
    a = transport.find_match(0, 1, 0, "c")
    b = transport.find_match(0, 2, 0, "c")
    assert a is not None and b is not None
    # Both senders inject in parallel, but the receive port drains them one
    # after another: the second arrival is delayed by the transfer time.
    arrivals = sorted([a.arrival_time, b.arrival_time])
    assert arrivals[1] >= arrivals[0] + 100 * params.beta - 1e-9


def test_local_delay_postpones_injection(setup):
    engine, transport, params = setup
    transport.post_send(0, 1, 0, "c", np.zeros(4), local_delay=50.0)
    engine.run()
    message = transport.find_match(1, 0, 0, "c")
    assert message.arrival_time == pytest.approx(50.0 + params.alpha + 4 * params.beta)


def test_send_handle_completion_time(setup):
    engine, transport, params = setup
    handle = transport.post_send(0, 1, 0, "c", np.zeros(8))
    assert not handle.done
    engine.run()
    assert handle.done
    assert handle.complete_time == pytest.approx(params.alpha + 8 * params.beta)


# ---------------------------------------------------------------------------
# Matching.
# ---------------------------------------------------------------------------

def test_match_by_source_tag_context(setup):
    engine, transport, _ = setup
    transport.post_send(0, 3, tag=7, context="a", payload="x")
    transport.post_send(1, 3, tag=8, context="a", payload="y")
    transport.post_send(2, 3, tag=7, context="b", payload="z")
    engine.run()
    assert transport.find_match(3, 0, 7, "a").payload == "x"
    assert transport.find_match(3, 1, 8, "a").payload == "y"
    assert transport.find_match(3, 2, 7, "b").payload == "z"
    assert transport.find_match(3, 0, 8, "a") is None
    assert transport.find_match(3, 1, 7, "a") is None


def test_wildcard_source_and_tag(setup):
    engine, transport, _ = setup
    transport.post_send(2, 0, tag=5, context="ctx", payload="hello")
    engine.run()
    assert transport.find_match(0, ANY_SOURCE, 5, "ctx").payload == "hello"
    assert transport.find_match(0, 2, ANY_TAG, "ctx").payload == "hello"
    assert transport.find_match(0, ANY_SOURCE, ANY_TAG, "ctx").payload == "hello"
    assert transport.find_match(0, ANY_SOURCE, ANY_TAG, "other") is None


def test_take_match_removes_message(setup):
    engine, transport, _ = setup
    transport.post_send(0, 1, 0, "c", "data")
    engine.run()
    assert transport.pending_count(1) == 1
    message = transport.take_match(1, 0, 0, "c")
    assert message.payload == "data"
    assert transport.pending_count(1) == 0
    assert transport.take_match(1, 0, 0, "c") is None


def test_fifo_matching_per_pair(setup):
    engine, transport, _ = setup
    for index in range(5):
        transport.post_send(0, 1, tag=9, context="c", payload=index)
    engine.run()
    received = [transport.take_match(1, 0, 9, "c").payload for _ in range(5)]
    assert received == [0, 1, 2, 3, 4]


def test_notify_hook_called_on_delivery(setup):
    engine, transport, _ = setup
    calls = []
    transport.set_notify_hook(2, lambda: calls.append(engine.now))
    transport.post_send(0, 2, 0, "c", np.zeros(2))
    engine.run()
    assert len(calls) >= 1


def test_invalid_rank_rejected(setup):
    _, transport, _ = setup
    with pytest.raises(ValueError):
        transport.post_send(0, 99, 0, "c", None)
    with pytest.raises(ValueError):
        transport.post_send(-1, 0, 0, "c", None)
    with pytest.raises(ValueError):
        transport.find_match(99, 0, 0, "c")


def test_any_arrived_returns_earliest(setup):
    engine, transport, _ = setup
    transport.post_send(0, 1, 1, "c", "first")
    transport.post_send(2, 1, 2, "c", "second")
    engine.run()
    assert transport.any_arrived(1).payload == "first"
    assert transport.any_arrived(3) is None


def test_network_presets_are_consistent():
    for preset in (NetworkParams.default(), NetworkParams.latency_bound(),
                   NetworkParams.bandwidth_bound()):
        assert preset.alpha > 0
        assert preset.beta > 0
        assert preset.gamma > 0
        assert preset.message_cost(10) > preset.message_cost(0)


# ---------------------------------------------------------------------------
# Indexed-mailbox regression: FIFO and wildcard semantics preserved exactly.
# ---------------------------------------------------------------------------

def test_fifo_preserved_with_interleaved_tags(setup):
    """FIFO per (src, dst, tag) even when other tags interleave."""
    engine, transport, _ = setup
    for index in range(4):
        transport.post_send(0, 1, tag=1, context="c", payload=("a", index))
        transport.post_send(0, 1, tag=2, context="c", payload=("b", index))
    engine.run()
    on_tag_1 = [transport.take_match(1, 0, 1, "c").payload for _ in range(4)]
    on_tag_2 = [transport.take_match(1, 0, 2, "c").payload for _ in range(4)]
    assert on_tag_1 == [("a", i) for i in range(4)]
    assert on_tag_2 == [("b", i) for i in range(4)]


def test_wildcard_source_takes_earliest_across_senders(setup):
    engine, transport, _ = setup
    transport.post_send(2, 0, tag=5, context="c", payload="from-2")
    transport.post_send(1, 0, tag=5, context="c", payload="from-1")
    transport.post_send(3, 0, tag=5, context="c", payload="from-3")
    engine.run()
    order = [transport.take_match(0, ANY_SOURCE, 5, "c").payload
             for _ in range(3)]
    # Earliest posted (lowest seq) first, regardless of sender rank.
    assert order == ["from-2", "from-1", "from-3"]


def test_wildcard_tag_takes_earliest_across_tags(setup):
    engine, transport, _ = setup
    transport.post_send(0, 1, tag=9, context="c", payload="tag-9")
    transport.post_send(0, 1, tag=3, context="c", payload="tag-3")
    engine.run()
    assert transport.take_match(1, 0, ANY_TAG, "c").payload == "tag-9"
    assert transport.take_match(1, 0, ANY_TAG, "c").payload == "tag-3"


def test_take_match_where_respects_filter_and_order(setup):
    engine, transport, _ = setup
    transport.post_send(1, 0, tag=4, context="c", payload="one")
    transport.post_send(2, 0, tag=4, context="c", payload="two")
    transport.post_send(3, 0, tag=4, context="c", payload="three")
    engine.run()
    allowed = {2, 3}
    first = transport.take_match_where(0, 4, "c", lambda src: src in allowed)
    second = transport.take_match_where(0, 4, "c", lambda src: src in allowed)
    third = transport.take_match_where(0, 4, "c", lambda src: src in allowed)
    assert (first.payload, second.payload) == ("two", "three")
    assert third is None
    # The filtered-out message is still there for an unrestricted receive.
    assert transport.take_match(0, ANY_SOURCE, 4, "c").payload == "one"


def test_indexed_matches_linear_reference_on_random_traffic():
    """Differential test: indexed and linear-scan mailboxes agree match for
    match on randomised traffic and randomised receive envelopes."""
    from repro.simulator.network import IndexedMailbox, LinearScanMailbox

    rng = np.random.default_rng(1234)
    num_ranks = 6
    tags = [0, 1, 2, ANY_TAG]
    contexts = ["x", "y"]

    def build(mailbox_factory):
        engine = Engine()
        transport = Transport(engine, num_ranks,
                              NetworkParams(alpha=2.0, beta=0.01),
                              mailbox_factory=mailbox_factory)
        return engine, transport

    for trial in range(10):
        seed = int(rng.integers(0, 2**31))
        trial_rng = np.random.default_rng(seed)
        sends = [(int(trial_rng.integers(0, num_ranks)),
                  int(trial_rng.integers(0, num_ranks)),
                  int(trial_rng.integers(0, 3)),
                  contexts[int(trial_rng.integers(0, 2))],
                  index)
                 for index in range(60)]
        receives = [(int(trial_rng.integers(0, num_ranks)),
                     int(trial_rng.integers(-1, num_ranks)),
                     tags[int(trial_rng.integers(0, len(tags)))],
                     contexts[int(trial_rng.integers(0, 2))])
                    for _ in range(120)]

        outcomes = []
        for factory in (IndexedMailbox, LinearScanMailbox):
            engine, transport = build(factory)
            for src, dst, tag, context, payload in sends:
                transport.post_send(src, dst, tag, context, payload)
            engine.run()
            log = []
            for dst, source, tag, context in receives:
                message = transport.take_match(dst, source, tag, context)
                log.append(None if message is None else
                           (message.seq, message.src, message.tag,
                            message.context, message.payload))
            log.append([transport.pending_count(r) for r in range(num_ranks)])
            for r in range(num_ranks):
                earliest = transport.any_arrived(r)
                log.append(None if earliest is None else earliest.seq)
            outcomes.append(log)
        assert outcomes[0] == outcomes[1], f"divergence with seed {seed}"


# ---------------------------------------------------------------------------
# Incast serialisation invariants (flat and hierarchical models).
# ---------------------------------------------------------------------------

def _incast_arrivals(params, placement, sends, dst):
    """Run ``sends`` = [(src, words), ...] into ``dst``; return the messages."""
    engine = Engine()
    num_ranks = 8
    transport = Transport(engine, num_ranks, params, placement=placement)
    for src, words in sends:
        transport.post_send(src, dst, 0, "c", np.zeros(words))
    engine.run()
    messages = []
    while True:
        message = transport.take_match(dst, ANY_SOURCE, ANY_TAG, "c")
        if message is None:
            break
        messages.append(message)
    assert len(messages) == len(sends)
    return messages


def _assert_receive_port_serialised(params, placement, messages, dst):
    """Consecutive deliveries to one rank are separated by the later message's
    full transfer time: the receive port admits one transfer at a time."""
    for previous, current in zip(messages, messages[1:]):
        _, beta = params.link(current.src, dst, placement
                              if placement is not None else None)
        gap = current.arrival_time - previous.arrival_time
        assert gap >= current.words * beta - 1e-9, (
            f"messages {previous.seq}->{current.seq}: gap {gap} smaller than "
            f"transfer time {current.words * beta}")


@pytest.mark.parametrize("model", ["flat", "hierarchical"])
def test_incast_is_serialised_under_random_patterns(model):
    """Property test: k-to-1 sends arrive serially under both cost models."""
    from repro.simulator.network import HierarchicalParams, Placement

    if model == "flat":
        params = NetworkParams(alpha=4.0, beta=0.01)
        placement = None
    else:
        params = HierarchicalParams(
            intra_node_alpha=1.0, intra_node_beta=0.002,
            inter_node_alpha=4.0, inter_node_beta=0.01,
            inter_island_alpha=8.0, inter_island_beta=0.02,
        )
        placement = Placement.regular(8, ranks_per_node=2, nodes_per_island=2)

    rng = np.random.default_rng(99 if model == "flat" else 100)
    for _ in range(25):
        dst = int(rng.integers(0, 8))
        k = int(rng.integers(2, 7))
        senders = [int(s) for s in rng.choice(
            [r for r in range(8) if r != dst], size=k, replace=False)]
        sends = [(src, int(rng.integers(1, 400))) for src in senders]
        messages = _incast_arrivals(params, placement, sends, dst)
        # take_match with full wildcards drains in seq order, which is also
        # non-decreasing arrival order for a single destination.
        arrivals = [m.arrival_time for m in messages]
        assert arrivals == sorted(arrivals)
        _assert_receive_port_serialised(params, placement, messages, dst)
