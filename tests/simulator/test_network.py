"""Unit tests of the alpha-beta transport and message matching."""

import numpy as np
import pytest

from repro.simulator.engine import Engine
from repro.simulator.network import (
    ANY_SOURCE,
    ANY_TAG,
    NetworkParams,
    Transport,
    payload_words,
)


@pytest.fixture
def setup():
    engine = Engine()
    params = NetworkParams(alpha=10.0, beta=0.5, gamma=0.1)
    transport = Transport(engine, num_ranks=4, params=params)
    return engine, transport, params


# ---------------------------------------------------------------------------
# payload_words
# ---------------------------------------------------------------------------

def test_payload_words_none_is_zero():
    assert payload_words(None) == 0


def test_payload_words_scalar_is_one():
    assert payload_words(3.5) == 1
    assert payload_words(7) == 1


def test_payload_words_numpy_counts_elements():
    assert payload_words(np.zeros(17)) == 17
    assert payload_words(np.zeros((3, 5))) == 15


def test_payload_words_containers_recurse():
    assert payload_words([np.zeros(4), np.zeros(6)]) == 10
    assert payload_words((1.0, np.zeros(3))) == 4
    assert payload_words({"a": np.zeros(2)}) == 3  # value words + 1 per key


def test_payload_words_object_fallback():
    class Thing:
        pass

    assert payload_words(Thing()) == 1


# ---------------------------------------------------------------------------
# Cost model.
# ---------------------------------------------------------------------------

def test_message_cost_formula():
    params = NetworkParams(alpha=3.0, beta=0.25)
    assert params.message_cost(0) == 3.0
    assert params.message_cost(100) == 3.0 + 25.0


def test_single_message_arrival_time(setup):
    engine, transport, params = setup
    transport.post_send(src=0, dst=1, tag=0, context="c", payload=np.zeros(10))
    engine.run()
    message = transport.find_match(1, 0, 0, "c")
    assert message is not None
    assert message.arrival_time == pytest.approx(params.alpha + 10 * params.beta)


def test_send_port_serialises_consecutive_sends(setup):
    engine, transport, params = setup
    transport.post_send(0, 1, 0, "c", np.zeros(10))
    transport.post_send(0, 2, 0, "c", np.zeros(10))
    engine.run()
    first = transport.find_match(1, 0, 0, "c")
    second = transport.find_match(2, 0, 0, "c")
    cost = params.alpha + 10 * params.beta
    assert first.arrival_time == pytest.approx(cost)
    # The second message only starts once the first left the send port.
    assert second.arrival_time == pytest.approx(2 * cost)


def test_recv_port_serialises_incast(setup):
    engine, transport, params = setup
    transport.post_send(1, 0, 0, "c", np.zeros(100))
    transport.post_send(2, 0, 0, "c", np.zeros(100))
    engine.run()
    a = transport.find_match(0, 1, 0, "c")
    b = transport.find_match(0, 2, 0, "c")
    assert a is not None and b is not None
    # Both senders inject in parallel, but the receive port drains them one
    # after another: the second arrival is delayed by the transfer time.
    arrivals = sorted([a.arrival_time, b.arrival_time])
    assert arrivals[1] >= arrivals[0] + 100 * params.beta - 1e-9


def test_local_delay_postpones_injection(setup):
    engine, transport, params = setup
    transport.post_send(0, 1, 0, "c", np.zeros(4), local_delay=50.0)
    engine.run()
    message = transport.find_match(1, 0, 0, "c")
    assert message.arrival_time == pytest.approx(50.0 + params.alpha + 4 * params.beta)


def test_send_handle_completion_time(setup):
    engine, transport, params = setup
    handle = transport.post_send(0, 1, 0, "c", np.zeros(8))
    assert not handle.done
    engine.run()
    assert handle.done
    assert handle.complete_time == pytest.approx(params.alpha + 8 * params.beta)


# ---------------------------------------------------------------------------
# Matching.
# ---------------------------------------------------------------------------

def test_match_by_source_tag_context(setup):
    engine, transport, _ = setup
    transport.post_send(0, 3, tag=7, context="a", payload="x")
    transport.post_send(1, 3, tag=8, context="a", payload="y")
    transport.post_send(2, 3, tag=7, context="b", payload="z")
    engine.run()
    assert transport.find_match(3, 0, 7, "a").payload == "x"
    assert transport.find_match(3, 1, 8, "a").payload == "y"
    assert transport.find_match(3, 2, 7, "b").payload == "z"
    assert transport.find_match(3, 0, 8, "a") is None
    assert transport.find_match(3, 1, 7, "a") is None


def test_wildcard_source_and_tag(setup):
    engine, transport, _ = setup
    transport.post_send(2, 0, tag=5, context="ctx", payload="hello")
    engine.run()
    assert transport.find_match(0, ANY_SOURCE, 5, "ctx").payload == "hello"
    assert transport.find_match(0, 2, ANY_TAG, "ctx").payload == "hello"
    assert transport.find_match(0, ANY_SOURCE, ANY_TAG, "ctx").payload == "hello"
    assert transport.find_match(0, ANY_SOURCE, ANY_TAG, "other") is None


def test_take_match_removes_message(setup):
    engine, transport, _ = setup
    transport.post_send(0, 1, 0, "c", "data")
    engine.run()
    assert transport.pending_count(1) == 1
    message = transport.take_match(1, 0, 0, "c")
    assert message.payload == "data"
    assert transport.pending_count(1) == 0
    assert transport.take_match(1, 0, 0, "c") is None


def test_fifo_matching_per_pair(setup):
    engine, transport, _ = setup
    for index in range(5):
        transport.post_send(0, 1, tag=9, context="c", payload=index)
    engine.run()
    received = [transport.take_match(1, 0, 9, "c").payload for _ in range(5)]
    assert received == [0, 1, 2, 3, 4]


def test_notify_hook_called_on_delivery(setup):
    engine, transport, _ = setup
    calls = []
    transport.set_notify_hook(2, lambda: calls.append(engine.now))
    transport.post_send(0, 2, 0, "c", np.zeros(2))
    engine.run()
    assert len(calls) >= 1


def test_invalid_rank_rejected(setup):
    _, transport, _ = setup
    with pytest.raises(ValueError):
        transport.post_send(0, 99, 0, "c", None)
    with pytest.raises(ValueError):
        transport.post_send(-1, 0, 0, "c", None)
    with pytest.raises(ValueError):
        transport.find_match(99, 0, 0, "c")


def test_any_arrived_returns_earliest(setup):
    engine, transport, _ = setup
    transport.post_send(0, 1, 1, "c", "first")
    transport.post_send(2, 1, 2, "c", "second")
    engine.run()
    assert transport.any_arrived(1).payload == "first"
    assert transport.any_arrived(3) is None


def test_network_presets_are_consistent():
    for preset in (NetworkParams.default(), NetworkParams.latency_bound(),
                   NetworkParams.bandwidth_bound()):
        assert preset.alpha > 0
        assert preset.beta > 0
        assert preset.gamma > 0
        assert preset.message_cost(10) > preset.message_cost(0)
