"""Tests of the per-rank environment (compute, sleep, wait_until semantics)."""

import pytest

from repro.simulator import Cluster, NetworkParams


def test_now_tracks_virtual_time():
    def program(env):
        times = [env.now]
        yield from env.sleep(4.0)
        times.append(env.now)
        yield from env.sleep(0.0)
        times.append(env.now)
        return times

    assert Cluster(1).run(program).results[0] == [0.0, 4.0, 4.0]


def test_compute_scales_with_gamma():
    params = NetworkParams(alpha=1.0, beta=0.1, gamma=2.0)

    def program(env):
        yield from env.compute(7)
        return env.now

    assert Cluster(1, params).run(program).results[0] == pytest.approx(14.0)


def test_compute_zero_is_free_and_does_not_yield_time():
    def program(env):
        yield from env.compute(0)
        yield from env.compute_time(0.0)
        return env.now

    assert Cluster(1).run(program).results[0] == 0.0


def test_compute_is_recorded_in_trace():
    def program(env):
        yield from env.compute(100)
        return None

    cluster = Cluster(2)
    cluster.run(program)
    recorded = cluster.tracer.stats.compute_time
    assert all(value > 0 for value in recorded)


def test_wait_until_with_side_effecting_predicate():
    """The predicate is re-evaluated on every notification and may progress state."""

    def program(env):
        if env.rank == 0:
            for index in range(3):
                yield from env.sleep(10.0)
                env.transport.post_send(0, 1, tag=index, context="c", payload=index)
            return None

        seen = []

        def predicate():
            message = env.transport.any_arrived(1)
            if message is not None:
                env.transport.take_match(1, message.src, message.tag, message.context)
                seen.append(message.payload)
            return len(seen) == 3

        yield from env.wait_until(predicate)
        return seen

    assert Cluster(2).run(program).results[1] == [0, 1, 2]


def test_wait_until_true_predicate_returns_immediately():
    def program(env):
        yield from env.wait_until(lambda: True)
        return env.now

    assert Cluster(1).run(program).results[0] == 0.0


def test_wait_notify_low_level():
    def program(env):
        if env.rank == 0:
            yield from env.wait_notify()
            return env.now
        yield from env.sleep(25.0)
        env.transport.post_send(1, 0, tag=0, context="c", payload=None)
        return None

    params = NetworkParams(alpha=5.0, beta=0.0, gamma=0.0)
    assert Cluster(2, params).run(program).results[0] == pytest.approx(30.0)


def test_repr_contains_rank():
    def program(env):
        yield from env.sleep(0.0)
        return repr(env)

    assert "rank=1" in Cluster(2).run(program).results[1]
