"""Tests of the greedy message assignment (interval chopping)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.assignment import (
    chop_slot_range,
    greedy_assignment,
    incoming_message_counts,
)
from repro.sorting.intervals import capacity, overlap, owner_of, slot_range
from repro.sorting.partition import Pivot, partition_mask


def test_chop_empty_range():
    assert chop_slot_range(5, 5, 16, 4) == []
    assert chop_slot_range(7, 5, 16, 4) == []


def test_chop_within_one_process():
    pieces = chop_slot_range(5, 7, 16, 4)
    assert len(pieces) == 1
    piece = pieces[0]
    assert (piece.dest, piece.slot_start, piece.local_start, piece.length) == (1, 5, 0, 2)
    assert piece.slot_end == 7


def test_chop_across_process_boundaries():
    pieces = chop_slot_range(2, 11, 16, 4)      # 4 slots per process
    assert [(p.dest, p.slot_start, p.length) for p in pieces] == [
        (0, 2, 2), (1, 4, 4), (2, 8, 3)]
    assert [p.local_start for p in pieces] == [0, 2, 6]


def test_chop_respects_uneven_capacities():
    # n=10, p=3 -> capacities 4, 3, 3
    pieces = chop_slot_range(0, 10, 10, 3)
    assert [(p.dest, p.length) for p in pieces] == [(0, 4), (1, 3), (2, 3)]


def test_greedy_assignment_small_and_large_sides():
    # Task [0, 16) over 4 procs of capacity 4; this process holds slots 4..8,
    # 3 of its elements are small, 1 large; totals: 6 small overall, its small
    # prefix is 2 and large prefix is 2.
    small_pieces, large_pieces = greedy_assignment(
        lo=0, total_small=6, small_prefix=2, large_prefix=2,
        small_count=3, large_count=1, n=16, p=4)
    assert [(p.dest, p.slot_start, p.length) for p in small_pieces] == [(0, 2, 2), (1, 4, 1)]
    assert [(p.dest, p.slot_start, p.length) for p in large_pieces] == [(2, 8, 1)]
    # Local offsets index into the small / large buffers independently.
    assert [p.local_start for p in small_pieces] == [0, 2]
    assert [p.local_start for p in large_pieces] == [0]


def test_incoming_message_counts_excludes_self_by_default():
    pieces_by_rank = [
        [chop_slot_range(0, 4, 16, 4)[0]],           # rank 0 keeps its own slots
        chop_slot_range(0, 8, 16, 4),                # rank 1 sends to 0 and itself
        chop_slot_range(8, 16, 16, 4),               # rank 2 sends to 2 and 3
        [],
    ]
    counts = incoming_message_counts(pieces_by_rank, 4)
    assert counts == [1, 0, 0, 1]
    counts_with_self = incoming_message_counts(pieces_by_rank, 4, exclude_self=False)
    assert counts_with_self == [2, 1, 1, 1]


@given(st.integers(min_value=1, max_value=64),       # p
       st.integers(min_value=1, max_value=40),       # n/p scale
       st.data())
@settings(max_examples=80, deadline=None)
def test_property_full_level_assignment_is_a_permutation(p, scale, data):
    """Simulate one full JQuick level combinatorially: every global slot of the
    task is filled exactly once, every sender sends at most 4 pieces, and each
    piece stays within one destination's slot range."""
    n = p * scale
    rng_seed = data.draw(st.integers(0, 2 ** 20))
    rng = np.random.default_rng(rng_seed)
    values = rng.random(n)
    # Pivot: a random element with its slot for tie-breaking.
    pivot_slot = int(rng.integers(0, n))
    pivot = Pivot(float(values[pivot_slot]), pivot_slot)

    # Per-process partition counts.
    small_counts, large_counts = [], []
    for rank in range(p):
        start, end = slot_range(rank, n, p)
        mask = partition_mask(values[start:end], np.arange(start, end), pivot)
        small_counts.append(int(mask.sum()))
        large_counts.append(int((~mask).sum()))
    total_small = sum(small_counts)

    filled = np.zeros(n, dtype=int)
    all_pieces = []
    for rank in range(p):
        small_prefix = sum(small_counts[:rank])
        large_prefix = sum(large_counts[:rank])
        small_pieces, large_pieces = greedy_assignment(
            lo=0, total_small=total_small,
            small_prefix=small_prefix, large_prefix=large_prefix,
            small_count=small_counts[rank], large_count=large_counts[rank],
            n=n, p=p)
        pieces = small_pieces + large_pieces
        all_pieces.append(pieces)
        # A process sends at most 2 pieces per side (Section VII).
        assert len(small_pieces) <= 2 + (capacity(rank, n, p) > 0 and p > 0)
        assert len(pieces) <= 6
        for piece in pieces:
            dest_start, dest_end = slot_range(piece.dest, n, p)
            assert dest_start <= piece.slot_start
            assert piece.slot_end <= dest_end
            filled[piece.slot_start:piece.slot_end] += 1

    assert np.all(filled == 1), "every slot must be filled exactly once"
    counts = incoming_message_counts(all_pieces, p, exclude_self=False)
    for rank in range(p):
        assert counts[rank] <= min(2 * p, 2 * capacity(rank, n, p) + 2)
