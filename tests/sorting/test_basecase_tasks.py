"""Tests of the base-case helpers and the per-process task scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.simulator import Cluster
from repro.sorting.basecase import (
    BaseCaseTask,
    local_sort_cost,
    quickselect_cost,
    select_left_part,
    select_right_part,
    sort_local,
)
from repro.sorting.tasks import Blocking, Pending, Spawn, run_task_scheduler


# ---------------------------------------------------------------------------
# Base-case helpers.
# ---------------------------------------------------------------------------

def test_sort_local_returns_sorted_copy():
    data = np.array([3.0, 1.0, 2.0])
    result = sort_local(data)
    np.testing.assert_array_equal(result, [1.0, 2.0, 3.0])
    np.testing.assert_array_equal(data, [3.0, 1.0, 2.0])


def test_select_left_and_right_parts():
    combined = np.array([5.0, 3.0, 8.0, 1.0, 9.0, 2.0])
    np.testing.assert_array_equal(select_left_part(combined, 2), [1.0, 2.0])
    np.testing.assert_array_equal(select_right_part(combined, 2), [8.0, 9.0])
    np.testing.assert_array_equal(select_left_part(combined, 0), [])
    np.testing.assert_array_equal(select_right_part(combined, 6),
                                  np.sort(combined))


def test_basecase_task_two_process_flag():
    task = BaseCaseTask(lo=0, hi=4, data=np.zeros(2), first_rank=1, last_rank=2)
    assert task.two_process
    single = BaseCaseTask(lo=0, hi=4, data=np.zeros(4), first_rank=3, last_rank=3)
    assert not single.two_process


def test_cost_helpers_monotone():
    assert local_sort_cost(0) == 0
    assert local_sort_cost(1024) > local_sort_cost(32) > 0
    assert quickselect_cost(100) == 100


@given(hnp.arrays(np.float64, st.integers(1, 100),
                  elements=st.floats(-1e6, 1e6, allow_nan=False)),
       st.data())
@settings(max_examples=60)
def test_property_left_and_right_parts_complement(combined, data):
    """Left part of size k plus right part of size n-k reassemble the sorted array."""
    k = data.draw(st.integers(0, combined.size))
    left = select_left_part(combined, k)
    right = select_right_part(combined, combined.size - k)
    reassembled = np.concatenate([left, right])
    np.testing.assert_array_equal(reassembled, np.sort(combined))


# ---------------------------------------------------------------------------
# Task scheduler.
# ---------------------------------------------------------------------------

class _ManualRequest:
    """A request completed by flipping a flag (test double)."""

    def __init__(self):
        self.completed = False
        self.polls = 0

    def test(self):
        self.polls += 1
        return self.completed


def test_scheduler_runs_plain_coroutines_to_completion():
    def coroutine(result):
        yield Blocking(iter(()))   # no-op blocking generator
        return result

    def program(env):
        def blocking_gen():
            yield from env.sleep(1.0)
            return None

        def task(value):
            yield Blocking(blocking_gen())
            return value * 2

        results = yield from run_task_scheduler(env, [task(1), task(2)])
        return results

    assert Cluster(1).run(program).results[0] == [2, 4]


def test_scheduler_interleaves_pending_tasks():
    """A task blocked on Pending must not prevent the other task from running."""

    def program(env):
        gate = _ManualRequest()
        order = []

        def waiter():
            order.append("waiter-start")
            yield Pending([gate])
            order.append("waiter-end")
            return "waited"

        def opener():
            order.append("opener-start")
            yield Blocking(env.sleep(5.0))
            gate.completed = True
            order.append("opener-end")
            return "opened"

        results = yield from run_task_scheduler(env, [waiter(), opener()])
        return results, order

    results, order = Cluster(1).run(program).results[0]
    assert results == ["waited", "opened"]
    assert order.index("opener-end") < order.index("waiter-end")


def test_scheduler_blocking_returns_value_into_coroutine():
    def program(env):
        def blocking_gen():
            yield from env.sleep(1.0)
            return 42

        def task():
            value = yield Blocking(blocking_gen())
            return value + 1

        results = yield from run_task_scheduler(env, [task()])
        return results

    assert Cluster(1).run(program).results[0] == [43]


def test_scheduler_spawned_tasks_run_and_report_results():
    def program(env):
        def child(value):
            yield Blocking(env.sleep(1.0))
            return f"child-{value}"

        def parent():
            yield Spawn(child(1))
            yield Spawn(child(2))
            yield Blocking(env.sleep(1.0))
            return "parent"

        results = yield from run_task_scheduler(env, [parent()])
        return results

    assert Cluster(1).run(program).results[0] == ["parent", "child-1", "child-2"]


def test_scheduler_rejects_unknown_directives():
    def program(env):
        def bad_task():
            yield "not-a-directive"

        with pytest.raises(TypeError):
            yield from run_task_scheduler(env, [bad_task()])
        return True

    assert Cluster(1).run(program).results[0]


def test_scheduler_pending_across_processes():
    """Pending requests that complete via real messages wake the scheduler."""
    from repro.mpi import init_mpi

    def program(env):
        world = init_mpi(env)

        def task():
            if world.rank == 0:
                request = world.irecv(1, 0)
                yield Pending([request])
                return request.result()
            send = world.isend("payload", 0, 0)
            yield Pending([send])
            return None

        results = yield from run_task_scheduler(env, [task()])
        return results[0]

    assert Cluster(2).run(program).results[0] == "payload"
