"""Tests of the baseline sorters (hypercube quicksort, sample sort) and checks."""

import numpy as np
import pytest

from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.sorting import (
    HypercubeConfig,
    SampleSortConfig,
    hypercube_quicksort,
    imbalance_factor,
    is_globally_sorted,
    is_perfectly_balanced,
    is_permutation_of_input,
    sample_sort,
    verify_sort,
)
from repro.bench.workloads import generate


def _run_sorter(sorter, p, n, *, workload="uniform", seed=3, config=None):
    parts = generate(workload, n, p, seed=seed)

    def program(env, local_data):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        if config is None:
            output, stats = yield from sorter(env, world, local_data)
        else:
            output, stats = yield from sorter(env, world, local_data, config)
        return output, stats

    result = Cluster(p).run(
        program, rank_kwargs=[dict(local_data=parts[r]) for r in range(p)])
    outputs = [r[0] for r in result.results]
    stats = [r[1] for r in result.results]
    return parts, outputs, stats


# ---------------------------------------------------------------------------
# Hypercube quicksort.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p,n", [(1, 5), (2, 20), (4, 64), (8, 120), (16, 160)])
def test_hypercube_sorts_globally(p, n):
    parts, outputs, _ = _run_sorter(hypercube_quicksort, p, n)
    assert is_globally_sorted(outputs)
    assert is_permutation_of_input(parts, outputs)


@pytest.mark.parametrize("workload", ["uniform", "duplicates", "sorted", "all_equal"])
def test_hypercube_handles_duplicate_heavy_inputs(workload):
    parts, outputs, _ = _run_sorter(hypercube_quicksort, 8, 96, workload=workload)
    assert is_globally_sorted(outputs)
    assert is_permutation_of_input(parts, outputs)


def test_hypercube_requires_power_of_two():
    with pytest.raises(Exception):
        _run_sorter(hypercube_quicksort, 6, 36)


def test_hypercube_pivot_strategies():
    for pivot in ("median_of_root", "mean_of_medians"):
        parts, outputs, _ = _run_sorter(
            hypercube_quicksort, 8, 64,
            config=HypercubeConfig(pivot=pivot))
        assert is_globally_sorted(outputs)


def test_hypercube_reports_levels_and_loads():
    _, _, stats = _run_sorter(hypercube_quicksort, 8, 64)
    assert all(s.levels == 3 for s in stats)
    assert all(s.max_local_load >= 1 for s in stats)


def test_hypercube_config_validation():
    with pytest.raises(ValueError):
        HypercubeConfig(pivot="magic")


def test_hypercube_may_be_imbalanced_on_skewed_input():
    """No balance guarantee — with skewed data some process ends up heavier
    (this is the motivation for JQuick in Section IV)."""
    parts, outputs, _ = _run_sorter(hypercube_quicksort, 8, 256, workload="zipf",
                                    seed=7)
    assert is_globally_sorted(outputs)
    assert imbalance_factor(outputs) >= 1.0


# ---------------------------------------------------------------------------
# Sample sort.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p,n", [(1, 9), (3, 60), (5, 100), (8, 256), (13, 260)])
def test_sample_sort_sorts_globally(p, n):
    parts, outputs, _ = _run_sorter(sample_sort, p, n)
    assert is_globally_sorted(outputs)
    assert is_permutation_of_input(parts, outputs)


@pytest.mark.parametrize("workload", ["uniform", "duplicates", "all_equal", "reverse"])
def test_sample_sort_workloads(workload):
    parts, outputs, _ = _run_sorter(sample_sort, 6, 180, workload=workload)
    assert is_globally_sorted(outputs)
    assert is_permutation_of_input(parts, outputs)


def test_sample_sort_oversampling_improves_balance():
    def imbalance(oversampling):
        _, outputs, _ = _run_sorter(
            sample_sort, 8, 2048, seed=1,
            config=SampleSortConfig(oversampling=oversampling))
        return imbalance_factor(outputs)

    assert imbalance(64) <= imbalance(2) * 1.1


def test_sample_sort_message_count_is_p_minus_one():
    _, _, stats = _run_sorter(sample_sort, 9, 180)
    assert all(s.messages_sent == 8 for s in stats)


# ---------------------------------------------------------------------------
# Checks module.
# ---------------------------------------------------------------------------

def test_checks_detect_unsorted_output():
    assert not is_globally_sorted([np.array([3.0, 1.0])])
    assert not is_globally_sorted([np.array([1.0, 5.0]), np.array([4.0])])
    assert is_globally_sorted([np.array([1.0, 2.0]), np.array([]), np.array([2.0])])


def test_checks_detect_lost_elements():
    inputs = [np.array([1.0, 2.0]), np.array([3.0])]
    assert not is_permutation_of_input(inputs, [np.array([1.0, 2.0]), np.array([4.0])])
    assert not is_permutation_of_input(inputs, [np.array([1.0, 2.0])])
    assert is_permutation_of_input(inputs, [np.array([3.0]), np.array([1.0, 2.0])])


def test_checks_balance_and_imbalance_factor():
    outputs = [np.zeros(3), np.zeros(3), np.zeros(2)]
    assert is_perfectly_balanced(outputs, 8)
    assert not is_perfectly_balanced([np.zeros(4), np.zeros(2), np.zeros(2)], 8)
    assert imbalance_factor([np.zeros(6), np.zeros(2)]) == pytest.approx(1.5)
    assert imbalance_factor([np.zeros(0), np.zeros(0)]) == 0.0


def test_verify_sort_raises_with_precise_messages():
    inputs = [np.array([2.0, 1.0]), np.array([3.0, 4.0])]
    good = [np.array([1.0, 2.0]), np.array([3.0, 4.0])]
    verify_sort(inputs, good)
    with pytest.raises(AssertionError, match="permutation"):
        verify_sort(inputs, [np.array([1.0, 2.0]), np.array([3.0, 5.0])])
    with pytest.raises(AssertionError, match="sorted"):
        verify_sort(inputs, [np.array([2.0, 1.0]), np.array([3.0, 4.0])])
    with pytest.raises(AssertionError, match="balanced"):
        verify_sort(inputs, [np.array([1.0, 2.0, 3.0]), np.array([4.0])])
