"""Tier-boundary equivalence of every row-batched kernel.

Each batched kernel of the cross-rank sorting tier carries two
implementations: a scalar loop at or below a size cutoff and a vectorised
sweep above it.  The two tiers must be bit-identical — the batched sorting
levels feed whichever tier the group size selects, and the differential
contract (batched run == scalar run) only holds if the kernels agree at
every size.  These tests pin the boundary explicitly: one size below the
cutoff, the cutoff itself (the last scalar size) and one size above (the
first vectorised size).
"""

import numpy as np
import pytest

from repro.core.rand import (
    ROWS_SCALAR_CUTOFF,
    sample_indices,
    sample_indices_rows,
    sample_key,
    sample_keys,
)
from repro.sorting.assignment import greedy_assignment, greedy_assignment_rows
from repro.sorting.kernels import (
    PARTITION_SCALAR_CUTOFF,
    fused_partition,
    fused_partition_rows,
    select_splitters,
    select_splitters_rows,
)

BOUNDARY_ROWS = (ROWS_SCALAR_CUTOFF - 1, ROWS_SCALAR_CUTOFF,
                 ROWS_SCALAR_CUTOFF + 1)


@pytest.mark.parametrize("num_rows", BOUNDARY_ROWS)
def test_sample_keys_matches_scalar_at_boundary(num_rows):
    ranks = np.arange(3, 3 + num_rows)
    keys = sample_keys(7, 2, 90, 4, ranks)
    assert keys.dtype == np.uint64
    for i, rank in enumerate(ranks):
        assert int(keys[i]) == sample_key(7, 2, 90, 4, int(rank))


@pytest.mark.parametrize("num_rows", BOUNDARY_ROWS)
def test_sample_indices_rows_matches_scalar_at_boundary(num_rows):
    rng = np.random.default_rng(num_rows)
    keys = sample_keys(11, 0, 64, 1, np.arange(num_rows))
    counts = rng.integers(0, 6, size=num_rows)
    sizes = rng.integers(0, 40, size=num_rows)
    indices, offsets = sample_indices_rows(keys, counts, sizes)
    assert indices.dtype == np.int64
    assert offsets.size == num_rows + 1
    for i in range(num_rows):
        expected = sample_indices(int(keys[i]), int(counts[i]), int(sizes[i]))
        np.testing.assert_array_equal(indices[offsets[i]:offsets[i + 1]],
                                      expected)


@pytest.mark.parametrize("total",
                         (PARTITION_SCALAR_CUTOFF - 1,
                          PARTITION_SCALAR_CUTOFF,
                          PARTITION_SCALAR_CUTOFF + 1))
@pytest.mark.parametrize("tie_breaking", (False, True))
def test_fused_partition_rows_matches_scalar_at_boundary(total, tie_breaking):
    rng = np.random.default_rng(total)
    # Duplicate-heavy rows so the tie cut actually decides membership.
    values = rng.integers(0, 4, size=total).astype(np.float64)
    offsets = np.array([0, total // 3, total // 2, total], dtype=np.int64)
    pivot_value = 1.0
    pivot_slot = total // 2
    row_lo = offsets[:-1].copy()  # rows laid out back to back in slot order
    if tie_breaking:
        cuts = np.clip(pivot_slot - row_lo, 0, np.diff(offsets))
    else:
        cuts = np.zeros(offsets.size - 1, dtype=np.int64)
    reordered, small_counts = fused_partition_rows(values, offsets, cuts,
                                                   pivot_value)
    smalls, larges = [], []
    for row in range(offsets.size - 1):
        part = values[offsets[row]:offsets[row + 1]]
        small, large, n_small = fused_partition(
            part, int(row_lo[row]), pivot_value, pivot_slot,
            tie_breaking=tie_breaking)
        assert small_counts[row] == n_small
        smalls.append(small)
        larges.append(large)
    np.testing.assert_array_equal(reordered, np.concatenate(smalls + larges))


@pytest.mark.parametrize("num_rows", BOUNDARY_ROWS)
def test_select_splitters_rows_matches_scalar_at_boundary(num_rows):
    rng = np.random.default_rng(num_rows)
    lengths = rng.integers(0, 9, size=num_rows)
    offsets = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    values = rng.random(int(offsets[-1]))
    k = 4
    splitters, out_offsets = select_splitters_rows(values, offsets, k,
                                                   values.dtype)
    for i in range(num_rows):
        expected = select_splitters([values[offsets[i]:offsets[i + 1]]], k,
                                    values.dtype)
        np.testing.assert_array_equal(
            splitters[out_offsets[i]:out_offsets[i + 1]], expected)


@pytest.mark.parametrize("num_rows", BOUNDARY_ROWS)
def test_greedy_assignment_rows_matches_scalar_at_boundary(num_rows):
    rng = np.random.default_rng(num_rows)
    n = p = 64
    lo = 8
    small_counts = rng.integers(0, 3, size=num_rows)
    large_counts = 1 - np.minimum(small_counts, 1) + rng.integers(
        0, 2, size=num_rows)
    small_prefixes = np.zeros(num_rows, dtype=np.int64)
    np.cumsum(small_counts[:-1], out=small_prefixes[1:])
    large_prefixes = np.zeros(num_rows, dtype=np.int64)
    np.cumsum(large_counts[:-1], out=large_prefixes[1:])
    total_small = int(small_counts.sum())
    dest, slot_start, length, row_offsets = greedy_assignment_rows(
        lo=lo, total_small=total_small, small_prefixes=small_prefixes,
        small_counts=small_counts, large_prefixes=large_prefixes,
        large_counts=large_counts, n=n, p=p)
    for row in range(num_rows):
        small_pieces, large_pieces = greedy_assignment(
            lo=lo, total_small=total_small,
            small_prefix=int(small_prefixes[row]),
            large_prefix=int(large_prefixes[row]),
            small_count=int(small_counts[row]),
            large_count=int(large_counts[row]), n=n, p=p)
        pieces = small_pieces + large_pieces
        begin, end = int(row_offsets[row]), int(row_offsets[row + 1])
        assert end - begin == len(pieces)
        for offset, piece in enumerate(pieces):
            assert dest[begin + offset] == piece.dest
            assert slot_start[begin + offset] == piece.slot_start
            assert length[begin + offset] == piece.length
