"""Unit and property tests of the balanced global-slot layout arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting.intervals import (
    Interval,
    capacity,
    overlap,
    owner_of,
    procs_of_interval,
    slot_range,
    slot_start,
    span,
)


def test_capacity_divisible():
    assert [capacity(i, 12, 4) for i in range(4)] == [3, 3, 3, 3]


def test_capacity_with_remainder():
    assert [capacity(i, 14, 4) for i in range(4)] == [4, 4, 3, 3]
    assert [capacity(i, 5, 3) for i in range(3)] == [2, 2, 1]


def test_capacity_n_smaller_than_p():
    assert [capacity(i, 3, 5) for i in range(5)] == [1, 1, 1, 0, 0]


def test_slot_ranges_partition_the_slots():
    n, p = 17, 5
    covered = []
    for rank in range(p):
        start, end = slot_range(rank, n, p)
        covered.extend(range(start, end))
    assert covered == list(range(n))


def test_owner_of_matches_slot_ranges():
    n, p = 23, 7
    for slot in range(n):
        owner = owner_of(slot, n, p)
        start, end = slot_range(owner, n, p)
        assert start <= slot < end


def test_owner_of_out_of_range():
    with pytest.raises(ValueError):
        owner_of(-1, 10, 2)
    with pytest.raises(ValueError):
        owner_of(10, 10, 2)


def test_procs_of_interval_and_span():
    n, p = 16, 4          # 4 slots each
    assert procs_of_interval(0, 16, n, p) == (0, 3)
    assert procs_of_interval(3, 5, n, p) == (0, 1)
    assert procs_of_interval(4, 8, n, p) == (1, 1)
    assert span(4, 8, n, p) == 1
    assert span(3, 9, n, p) == 3
    assert span(5, 5, n, p) == 0
    with pytest.raises(ValueError):
        procs_of_interval(5, 5, n, p)


def test_overlap_counts_slots_inside_interval():
    n, p = 16, 4
    assert overlap(0, 0, 16, n, p) == 4
    assert overlap(1, 3, 9, n, p) == 4
    assert overlap(1, 5, 7, n, p) == 2
    assert overlap(3, 0, 4, n, p) == 0


def test_interval_helpers():
    interval = Interval(3, 11, 16, 4)
    assert interval.size == 8
    assert not interval.empty
    assert interval.procs() == (0, 2)
    assert interval.span() == 3
    assert interval.overlap_of(1) == 4
    assert interval.local_slots(0) == (3, 4)
    left, right = interval.split_at(8)
    assert (left.lo, left.hi) == (3, 8)
    assert (right.lo, right.hi) == (8, 11)
    with pytest.raises(ValueError):
        interval.split_at(2)
    with pytest.raises(ValueError):
        Interval(5, 3, 16, 4)


def test_rank_validation():
    with pytest.raises(ValueError):
        capacity(5, 10, 5)
    with pytest.raises(ValueError):
        capacity(0, 10, 0)
    with pytest.raises(ValueError):
        capacity(-1, 10, 5)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=64))
@settings(max_examples=150)
def test_property_capacities_sum_to_n_and_differ_by_at_most_one(n, p):
    caps = [capacity(i, n, p) for i in range(p)]
    assert sum(caps) == n
    assert max(caps) - min(caps) <= 1
    assert all(c in (n // p, n // p + (1 if n % p else 0)) for c in caps)


@given(st.integers(min_value=1, max_value=5_000), st.integers(min_value=1, max_value=64))
@settings(max_examples=100)
def test_property_slot_start_is_prefix_sum_of_capacities(n, p):
    total = 0
    for rank in range(p):
        assert slot_start(rank, n, p) == total
        total += capacity(rank, n, p)


@given(st.integers(min_value=1, max_value=2_000), st.integers(min_value=1, max_value=48),
       st.data())
@settings(max_examples=100)
def test_property_interval_overlaps_partition_the_interval(n, p, data):
    lo = data.draw(st.integers(min_value=0, max_value=n - 1))
    hi = data.draw(st.integers(min_value=lo + 1, max_value=n))
    first, last = procs_of_interval(lo, hi, n, p)
    # Only the ranks reported by procs_of_interval overlap the interval ...
    for rank in range(p):
        if first <= rank <= last:
            assert overlap(rank, lo, hi, n, p) > 0
        else:
            assert overlap(rank, lo, hi, n, p) == 0
    # ... and their overlaps add up to the interval size.
    assert sum(overlap(r, lo, hi, n, p) for r in range(first, last + 1)) == hi - lo
