"""End-to-end tests of Janus Quicksort: correctness, balance, statistics."""

import numpy as np
import pytest

from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.sorting import (
    JQuickConfig,
    NativeMpiBackend,
    PivotConfig,
    RbcBackend,
    capacity,
    is_globally_sorted,
    is_perfectly_balanced,
    is_permutation_of_input,
    jquick,
    verify_sort,
)
from repro.bench.workloads import generate


def _run_jquick(p, n, *, backend="rbc", vendor="generic", workload="uniform",
                config=None, seed=5):
    parts = generate(workload, n, p, seed=seed)
    config = config or JQuickConfig(seed=seed)

    def program(env, local_data):
        world_mpi = init_mpi(env, vendor=vendor)
        if backend == "rbc":
            world = yield from create_rbc_comm(world_mpi)
            jq_backend = RbcBackend(world)
        else:
            jq_backend = NativeMpiBackend(world_mpi)
        output, stats = yield from jquick(env, jq_backend, local_data, config)
        return output, stats

    result = Cluster(p).run(
        program, rank_kwargs=[dict(local_data=parts[r]) for r in range(p)])
    outputs = [r[0] for r in result.results]
    stats = [r[1] for r in result.results]
    return parts, outputs, stats


GRID = [(1, 7), (2, 9), (3, 3), (4, 64), (5, 23), (8, 8), (9, 120), (16, 256)]


@pytest.mark.parametrize("p,n", GRID)
def test_rbc_backend_sorts_and_balances(p, n):
    parts, outputs, _ = _run_jquick(p, n)
    verify_sort(parts, outputs)


@pytest.mark.parametrize("p,n", [(4, 40), (7, 91), (12, 144)])
def test_native_mpi_backend_sorts_and_balances(p, n):
    parts, outputs, _ = _run_jquick(p, n, backend="mpi", vendor="intel")
    verify_sort(parts, outputs)


@pytest.mark.parametrize("workload", ["uniform", "gaussian", "sorted", "reverse",
                                      "duplicates", "few_distinct", "all_equal",
                                      "zipf", "staggered"])
def test_every_workload_is_sorted_with_perfect_balance(workload):
    parts, outputs, _ = _run_jquick(8, 96, workload=workload)
    verify_sort(parts, outputs)


@pytest.mark.parametrize("schedule", ["alternating", "cascaded"])
@pytest.mark.parametrize("backend,vendor", [("rbc", "generic"), ("mpi", "ibm")])
def test_schedules_and_backends_agree_on_the_result(schedule, backend, vendor):
    parts, outputs, _ = _run_jquick(
        8, 64, backend=backend, vendor=vendor,
        config=JQuickConfig(schedule=schedule, seed=2))
    verify_sort(parts, outputs)


def test_random_element_pivot_strategy():
    config = JQuickConfig(pivot=PivotConfig(strategy="random_element"), seed=11)
    parts, outputs, _ = _run_jquick(8, 128, config=config)
    verify_sort(parts, outputs)


def test_uneven_n_not_divisible_by_p():
    parts, outputs, _ = _run_jquick(7, 65)
    verify_sort(parts, outputs)
    sizes = [o.size for o in outputs]
    assert max(sizes) - min(sizes) <= 1


def test_n_smaller_than_p():
    parts, outputs, _ = _run_jquick(6, 4)
    verify_sort(parts, outputs)
    assert [o.size for o in outputs] == [1, 1, 1, 1, 0, 0]


def test_balance_holds_even_with_all_equal_keys():
    parts, outputs, _ = _run_jquick(8, 80, workload="all_equal")
    assert is_perfectly_balanced(outputs, 80)
    assert is_globally_sorted(outputs)


def test_stats_are_plausible():
    p, n = 16, 256
    _, _, stats = _run_jquick(p, n)
    # Distributed steps and communicator creations happen on every rank.
    assert all(s.distributed_steps >= 1 for s in stats)
    assert all(s.comm_creations >= 1 for s in stats)
    # Every element ends up in some base case.
    assert sum(s.base_cases_one + s.base_cases_two for s in stats) >= p // 2
    # The recursion depth stays in the O(log p) regime of Theorem 1.
    assert max(s.levels for s in stats) <= 6 * np.log2(p) + 4
    # Janus processes occurred (n/p > 1 and splits fall inside slot ranges).
    assert sum(s.janus_episodes for s in stats) >= 1


def test_exchange_message_bound():
    p, n_per_proc = 16, 8
    _, _, stats = _run_jquick(p, p * n_per_proc)
    worst = max(s.max_exchange_messages_per_step for s in stats)
    assert worst <= min(p, n_per_proc) + 4


def test_charge_local_work_flag_changes_time_only():
    def run(charge):
        parts, outputs, _ = _run_jquick(
            4, 64, config=JQuickConfig(charge_local_work=charge, seed=3))
        return outputs

    fast = run(False)
    slow = run(True)
    for a, b in zip(fast, slow):
        np.testing.assert_array_equal(a, b)


def test_rejects_unbalanced_input_layout():
    p, n = 4, 16
    parts = generate("uniform", n, p, seed=1)
    parts[0] = np.concatenate([parts[0], [1.0]])   # rank 0 has one element too many
    parts[1] = parts[1][:-1]

    def program(env, local_data):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        output, stats = yield from jquick(env, RbcBackend(world), local_data)
        return output

    from repro.simulator import RankFailedError
    with pytest.raises(RankFailedError):
        Cluster(p).run(program,
                       rank_kwargs=[dict(local_data=parts[r]) for r in range(p)])


def test_config_validation():
    with pytest.raises(ValueError):
        JQuickConfig(schedule="zigzag")


def test_empty_input():
    parts, outputs, _ = _run_jquick(4, 0)
    assert all(o.size == 0 for o in outputs)


def test_rbc_is_faster_than_native_mpi_for_small_inputs():
    """The core claim of Fig. 8 at unit-test scale."""

    def timed(backend, vendor):
        parts = generate("uniform", 64, 64, seed=9)

        def program(env, local_data):
            world_mpi = init_mpi(env, vendor=vendor)
            if backend == "rbc":
                world = yield from create_rbc_comm(world_mpi)
                jq_backend = RbcBackend(world)
            else:
                jq_backend = NativeMpiBackend(world_mpi)
            start = env.now
            yield from jquick(env, jq_backend, local_data, JQuickConfig(seed=9))
            return env.now - start

        result = Cluster(64).run(
            program, rank_kwargs=[dict(local_data=parts[r]) for r in range(64)])
        return max(result.results)

    rbc_time = timed("rbc", "generic")
    ibm_time = timed("mpi", "ibm")
    assert ibm_time > 3 * rbc_time


def test_integration_with_strided_rbc_subcommunicator():
    """JQuick also runs on an RBC communicator that is itself a sub-range."""
    p_total, p_sort, n = 12, 8, 64
    parts = generate("uniform", n, p_sort, seed=4)

    def program(env, local_data):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        sub = yield from world.split(2, 2 + p_sort - 1)   # MPI ranks 2..9
        if sub.rank is None:
            return None
        output, _ = yield from jquick(env, RbcBackend(sub), local_data,
                                      JQuickConfig(seed=4))
        return output

    rank_kwargs = []
    for rank in range(p_total):
        if 2 <= rank <= 9:
            rank_kwargs.append(dict(local_data=parts[rank - 2]))
        else:
            rank_kwargs.append(dict(local_data=None))
    result = Cluster(p_total).run(program, rank_kwargs=rank_kwargs)
    outputs = [r for r in result.results if r is not None]
    verify_sort(parts, outputs)
