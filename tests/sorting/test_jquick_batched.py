"""Differential contract of the cross-rank batched sorting tier.

The batched tier (``JQuickConfig.batch_levels``) prices whole distributed
levels in lockstep at ``n == p``; its contract is *bit identity*: simulated
finish times, sorted outputs and stats (modulo the ``batched_levels``
counter) must equal both the scalar per-rank frontier and the scalar
frontier on the reference engine.  Property-based inputs stress the regimes
where the tiers could plausibly diverge — duplicate-heavy keys (tie
breaking), pre-sorted inputs (maximally skewed splits) and adversarially
skewed magnitudes — plus the gate conditions around ``n == p`` and the
minimum rank count.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.sorting import JQuickConfig, RbcBackend, jquick
from repro.sorting.jquick import JQUICK_BATCH_MIN_RANKS

#: Lockstep phase kinds this module covers differentially (scanned by
#: ``benchmarks/check_lockstep_registry.py``): the fused jquick level phase
#: and the analytic data-exchange phase it drives.
COVERS_KINDS = ("jqlevel", "exchange")

P = JQUICK_BATCH_MIN_RANKS  # smallest auto-engaged group: every level batched


def _sort_program(env, *, local_data, config):
    world_mpi = init_mpi(env)
    world_rbc = yield from create_rbc_comm(world_mpi)
    output, stats = yield from jquick(env, RbcBackend(world_rbc),
                                      local_data, config)
    return env.now, output, stats.as_dict()


def _run(values, p, *, batch_levels, seed=17, reference=False):
    parts = [values[rank:rank + 1].copy() for rank in range(p)] \
        if values.size == p else _balanced(values, p)
    config = JQuickConfig(seed=seed, batch_levels=batch_levels)
    cluster = Cluster(p, reference_engine=reference)
    return cluster.run(
        _sort_program, config=config,
        rank_kwargs=[dict(local_data=part) for part in parts])


def _balanced(values, p):
    from repro.sorting.intervals import capacity
    parts, offset = [], 0
    for rank in range(p):
        count = capacity(rank, values.size, p)
        parts.append(values[offset:offset + count].copy())
        offset += count
    return parts


def _assert_identical(values, p, seed):
    batched = _run(values, p, batch_levels=True, seed=seed)
    scalar = _run(values, p, batch_levels=False, seed=seed)
    reference = _run(values, p, batch_levels=False, seed=seed,
                     reference=True)
    for rank in range(p):
        time_b, out_b, stats_b = batched.results[rank]
        time_s, out_s, stats_s = scalar.results[rank]
        time_r, out_r, stats_r = reference.results[rank]
        assert time_b == time_s == time_r
        assert np.array_equal(out_b, out_s) and np.array_equal(out_s, out_r)
        assert stats_b.pop("batched_levels") > 0
        stats_s.pop("batched_levels")
        stats_r.pop("batched_levels")
        assert stats_b == stats_s == stats_r
    merged = np.concatenate([batched.results[r][1] for r in range(p)])
    assert np.all(np.diff(merged) >= 0)
    assert merged.size == values.size


# ---------------------------------------------------------------------------
# Property-based bit identity at n == p.
# ---------------------------------------------------------------------------

@given(distinct=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_duplicate_heavy_inputs_bit_identical(distinct, seed):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, distinct, size=P).astype(np.float64)
    _assert_identical(values, P, seed)


@given(reverse=st.booleans(),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_pre_sorted_inputs_bit_identical(reverse, seed):
    rng = np.random.default_rng(seed)
    values = np.sort(rng.random(P))
    if reverse:
        values = values[::-1].copy()
    _assert_identical(values, P, seed)


@given(exponent=st.integers(min_value=1, max_value=200),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_adversarially_skewed_inputs_bit_identical(exponent, seed):
    """Zipf-like magnitudes spanning hundreds of orders of magnitude: the
    pivot lands far off-median, so the recursion degenerates towards the
    level bound and degenerate (empty-side) splits occur."""
    rng = np.random.default_rng(seed)
    values = np.power(10.0, -rng.integers(0, exponent, size=P).astype(float))
    _assert_identical(values, P, seed)


# ---------------------------------------------------------------------------
# Gate conditions.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p,engaged", [(P - 1, False), (P, True),
                                       (P + 1, True)])
def test_auto_gate_threshold(p, engaged):
    rng = np.random.default_rng(3)
    values = rng.random(p)
    result = _run(values, p, batch_levels=None)
    levels = [result.results[rank][2]["batched_levels"] for rank in range(p)]
    if engaged:
        assert all(level > 0 for level in levels)
    else:
        assert all(level == 0 for level in levels)
    merged = np.concatenate([result.results[r][1] for r in range(p)])
    assert np.all(np.diff(merged) >= 0)


def test_auto_gate_declines_when_n_exceeds_p():
    p = P
    rng = np.random.default_rng(4)
    values = rng.random(4 * p)
    result = _run(values, p, batch_levels=None)
    assert all(result.results[rank][2]["batched_levels"] == 0
               for rank in range(p))


def test_forced_batching_rejects_n_not_equal_p():
    p = P
    rng = np.random.default_rng(5)
    values = rng.random(4 * p)
    with pytest.raises(Exception) as excinfo:
        _run(values, p, batch_levels=True)
    assert "batch_levels" in str(excinfo.value)
