"""Property-based tests of Janus Quicksort's invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.sorting import JQuickConfig, RbcBackend, jquick
from repro.sorting.checks import (
    is_globally_sorted,
    is_perfectly_balanced,
    is_permutation_of_input,
)
from repro.sorting.intervals import capacity


def _split_balanced(values, p):
    parts, offset = [], 0
    for rank in range(p):
        count = capacity(rank, values.size, p)
        parts.append(values[offset:offset + count].copy())
        offset += count
    return parts


def _sort_with_jquick(values, p, seed, tie_breaking=True):
    parts = _split_balanced(values, p)
    config = JQuickConfig(seed=seed, tie_breaking=tie_breaking)

    def program(env, local_data):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        output, stats = yield from jquick(env, RbcBackend(world), local_data, config)
        return output, stats

    result = Cluster(p).run(
        program, rank_kwargs=[dict(local_data=parts[r]) for r in range(p)])
    outputs = [r[0] for r in result.results]
    stats = [r[1] for r in result.results]
    return parts, outputs, stats


@given(
    p=st.integers(min_value=1, max_value=12),
    n_per_proc=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_uniform_inputs_sorted_balanced_permutation(p, n_per_proc, seed):
    rng = np.random.default_rng(seed)
    values = rng.random(p * n_per_proc)
    parts, outputs, _ = _sort_with_jquick(values, p, seed)
    assert is_globally_sorted(outputs)
    assert is_perfectly_balanced(outputs, values.size)
    assert is_permutation_of_input(parts, outputs)


@given(
    p=st.integers(min_value=2, max_value=10),
    n=st.integers(min_value=1, max_value=150),
    distinct=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_heavy_duplicates_still_terminate_and_balance(p, n, distinct, seed):
    """With at most ``distinct`` different keys the tie-breaking scheme must
    still give perfect balance and termination within the level bound."""
    rng = np.random.default_rng(seed)
    values = rng.integers(0, distinct, size=n).astype(np.float64)
    parts, outputs, stats = _sort_with_jquick(values, p, seed)
    assert is_globally_sorted(outputs)
    assert is_perfectly_balanced(outputs, n)
    assert is_permutation_of_input(parts, outputs)
    assert max(s.levels for s in stats) <= 8 * max(1, np.log2(p)) + 6


@given(
    p=st.integers(min_value=2, max_value=8),
    values=st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=60),
    seed=st.integers(min_value=0, max_value=1_000),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_property_arbitrary_float_inputs(p, values, seed):
    values = np.asarray(values, dtype=np.float64)
    parts, outputs, _ = _sort_with_jquick(values, p, seed)
    assert is_globally_sorted(outputs)
    assert is_perfectly_balanced(outputs, values.size)
    assert is_permutation_of_input(parts, outputs)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_property_output_equals_numpy_sort(seed):
    """The distributed result equals a plain sequential sort of the input."""
    rng = np.random.default_rng(seed)
    p = int(rng.integers(2, 9))
    values = rng.normal(size=int(rng.integers(p, 10 * p)))
    _, outputs, _ = _sort_with_jquick(values, p, seed)
    np.testing.assert_allclose(np.concatenate(outputs), np.sort(values))
