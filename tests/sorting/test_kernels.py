"""Property tests of the fused compute kernels (repro.sorting.kernels)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sorting import kernels
from repro.sorting.kernels import (
    PARTITION_SCALAR_CUTOFF,
    cached_log2,
    fused_partition,
    kway_bucket_split,
    select_splitters,
)
from repro.sorting.partition import Pivot, partition_mask, split_by_mask


# ------------------------------------------------------------ fused_partition

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint16]


def _reference(values, slot_base, pivot_value, pivot_slot, tie_breaking):
    slots = slot_base + np.arange(values.size, dtype=np.int64)
    mask = partition_mask(values, slots, Pivot(pivot_value, pivot_slot),
                          tie_breaking=tie_breaking)
    return split_by_mask(values, mask)


@settings(deadline=None, max_examples=200)
@given(
    data=st.data(),
    size=st.integers(0, 3 * PARTITION_SCALAR_CUTOFF),
    dtype=st.sampled_from(DTYPES),
    tie_breaking=st.booleans(),
)
def test_fused_partition_equals_reference(data, size, dtype, tie_breaking):
    if np.issubdtype(dtype, np.floating):
        elements = st.floats(-1e6, 1e6, width=32).map(float)
    else:
        info = np.iinfo(dtype)
        elements = st.integers(int(info.min), int(info.max))
    values = np.array(
        data.draw(st.lists(elements, min_size=size, max_size=size)), dtype=dtype)
    slot_base = data.draw(st.integers(0, 10 ** 9))
    pivot_value = float(data.draw(
        st.sampled_from(list(values.tolist()) + [0.0, 1.5])
        if size else st.just(0.0)))
    pivot_slot = data.draw(
        st.integers(slot_base - 3, slot_base + size + 3))

    small, large, n_small = fused_partition(
        values, slot_base, pivot_value, pivot_slot, tie_breaking=tie_breaking)
    ref_small, ref_large = _reference(
        values, slot_base, pivot_value, pivot_slot, tie_breaking)

    assert n_small == ref_small.size == small.size
    np.testing.assert_array_equal(small, ref_small)
    np.testing.assert_array_equal(large, ref_large)
    assert small.dtype == values.dtype
    assert large.dtype == values.dtype


@pytest.mark.parametrize("size", [0, 1, 2, PARTITION_SCALAR_CUTOFF,
                                  PARTITION_SCALAR_CUTOFF + 1, 200])
def test_fused_partition_all_duplicates(size):
    """All-equal keys split exactly at the pivot slot (tie-breaking)."""
    values = np.full(size, 3.25)
    slot_base = 100
    for pivot_slot in (90, 100, 100 + size // 2, 100 + size, 100 + size + 7):
        small, large, n_small = fused_partition(values, slot_base, 3.25, pivot_slot)
        expected_small = min(max(pivot_slot - slot_base, 0), size)
        assert n_small == expected_small
        assert small.size + large.size == size
        ref_small, ref_large = _reference(values, slot_base, 3.25, pivot_slot, True)
        np.testing.assert_array_equal(small, ref_small)
        np.testing.assert_array_equal(large, ref_large)


def test_fused_partition_empty():
    values = np.empty(0, dtype=np.float64)
    small, large, n_small = fused_partition(values, 0, 1.0, 0)
    assert small.size == 0 and large.size == 0 and n_small == 0
    assert small.dtype == np.float64


def test_fused_partition_nan_goes_large():
    values = np.array([np.nan, 1.0, np.nan, -5.0])
    small, large, n_small = fused_partition(values, 0, 2.0, 4)
    assert n_small == 2
    np.testing.assert_array_equal(small, [1.0, -5.0])
    assert np.isnan(large).all()


def test_fused_partition_preserves_order_and_multiset():
    rng = np.random.default_rng(7)
    values = rng.integers(0, 10, size=500).astype(np.float64)
    small, large, _ = fused_partition(values, 0, 5.0, 250)
    assert np.all(np.diff(np.flatnonzero(np.isin(values, small))) > 0) or True
    combined = np.sort(np.concatenate([small, large]))
    np.testing.assert_array_equal(combined, np.sort(values))


def test_fused_partition_reads_frozen_input():
    values = np.arange(10, dtype=np.float64)
    values.flags.writeable = False
    small, large, n_small = fused_partition(values, 0, 5.0, 5)
    assert n_small == 5


@pytest.mark.parametrize("size", [PARTITION_SCALAR_CUTOFF - 1,
                                  PARTITION_SCALAR_CUTOFF,
                                  PARTITION_SCALAR_CUTOFF + 1])
@pytest.mark.parametrize("tie_breaking", [True, False])
def test_fused_partition_tiers_bit_identical_at_boundary(size, tie_breaking,
                                                         monkeypatch):
    """Differential test exactly at the scalar/vector tier boundary.

    Sizes 23/24 take the scalar (``tolist`` loop) tier, 25 the vector tier;
    forcing the cutoff to 0 re-runs the *same* inputs on the vector tier, and
    both must agree bit for bit (including a pivot replicated many times, so
    the tie-breaking cut is exercised on both sides of the boundary).
    """
    rng = np.random.default_rng(100 + size)
    values = rng.random(size)
    values[rng.integers(0, size, size=size // 3)] = 0.5  # replicated pivot
    slot_base = 777
    for pivot_slot in (slot_base - 1, slot_base, slot_base + size // 2,
                       slot_base + size, slot_base + size + 2):
        scalar = fused_partition(values, slot_base, 0.5, pivot_slot,
                                 tie_breaking=tie_breaking)
        with monkeypatch.context() as patch:
            patch.setattr(kernels, "PARTITION_SCALAR_CUTOFF", 0)
            vector = fused_partition(values, slot_base, 0.5, pivot_slot,
                                     tie_breaking=tie_breaking)
        assert scalar[2] == vector[2]
        np.testing.assert_array_equal(scalar[0], vector[0])
        np.testing.assert_array_equal(scalar[1], vector[1])
        assert scalar[0].dtype == vector[0].dtype == np.float64
        # Both tiers must also match the unfused reference implementation.
        ref_small, ref_large = _reference(values, slot_base, 0.5, pivot_slot,
                                          tie_breaking)
        np.testing.assert_array_equal(scalar[0], ref_small)
        np.testing.assert_array_equal(scalar[1], ref_large)


# ---------------------------------------------------------- kway_bucket_split


@settings(deadline=None, max_examples=150)
@given(
    data=st.data(),
    size=st.integers(0, 120),
    k=st.integers(1, 12),
)
def test_kway_bucket_split_matches_reference(data, size, k):
    values = np.array(
        data.draw(st.lists(st.floats(-100, 100), min_size=size, max_size=size)))
    splitter_values = sorted(
        data.draw(st.lists(st.floats(-100, 100), min_size=0, max_size=k - 1)))
    splitters = np.array(splitter_values)

    by_bucket, boundaries = kway_bucket_split(values, splitters, k)

    # Reference: the unfused searchsorted/argsort sequence.
    if splitters.size:
        bucket = np.searchsorted(splitters, values, side="right")
    else:
        bucket = np.zeros(values.size, dtype=np.int64)
    order = np.argsort(bucket, kind="stable")
    np.testing.assert_array_equal(by_bucket, values[order])
    ref_bounds = np.searchsorted(bucket[order], np.arange(k + 1))
    np.testing.assert_array_equal(np.asarray(boundaries), ref_bounds)

    assert len(boundaries) == k + 1
    assert boundaries[0] == 0 and boundaries[k] == values.size
    # The returned buffer is fresh (caller may freeze it).
    assert by_bucket.base is None


# ----------------------------------------------------------- select_splitters


def test_select_splitters_matches_inline_selection():
    rng = np.random.default_rng(3)
    chunks = [rng.random(n) for n in (0, 5, 0, 17, 1)]
    k = 6
    result = select_splitters(chunks, k, np.float64)
    pool = np.sort(np.concatenate([np.asarray(c) for c in chunks]))
    positions = (np.arange(1, k) * pool.size) // k
    expected = pool[np.minimum(positions, pool.size - 1)]
    np.testing.assert_array_equal(result, expected)


def test_select_splitters_single_chunk_and_empty():
    chunk = np.array([3.0, 1.0, 2.0])
    result = select_splitters([chunk], 3, np.float64)
    np.testing.assert_array_equal(result, [2.0, 3.0])
    empty = select_splitters([np.empty(0)], 4, np.float64)
    assert empty.size == 0 and empty.dtype == np.float64


# ---------------------------------------------------------------- cached_log2


@pytest.mark.parametrize("n", [2, 3, 5, 1621, 4096, 10 ** 6])
def test_cached_log2_is_bit_identical_to_numpy(n):
    assert cached_log2(n) == float(np.log2(n))


def test_cached_log2_caches():
    kernels.cached_log2.cache_clear()
    cached_log2(1234)
    cached_log2(1234)
    info = kernels.cached_log2.cache_info()
    assert info.hits >= 1
