"""Multi-level sample sort (Section IV's k-way compromise baseline)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.workloads import generate
from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.sorting import (
    MultilevelConfig,
    imbalance_factor,
    is_globally_sorted,
    is_permutation_of_input,
    multilevel_sample_sort,
)
from repro.sorting.multilevel import _group_layout


def _run(p, n, *, workload="uniform", seed=3, config=None):
    parts = generate(workload, n, p, seed=seed)

    def program(env, local_data):
        world_mpi = init_mpi(env)
        world = yield from create_rbc_comm(world_mpi)
        output, stats = yield from multilevel_sample_sort(
            env, world, local_data, config)
        return output, stats

    result = Cluster(p).run(
        program, rank_kwargs=[dict(local_data=parts[r]) for r in range(p)])
    outputs = [r[0] for r in result.results]
    stats = [r[1] for r in result.results]
    return parts, outputs, stats


# ---------------------------------------------------------------------------
# Group layout helper.
# ---------------------------------------------------------------------------

@given(size=st.integers(min_value=1, max_value=200),
       branching=st.integers(min_value=2, max_value=32))
@settings(max_examples=100, deadline=None)
def test_group_layout_partitions_the_ranks(size, branching):
    layout = _group_layout(size, branching)
    assert len(layout) == min(branching, size)
    assert layout[0][0] == 0
    assert layout[-1][1] == size - 1
    widths = []
    for (first, last), nxt in zip(layout, layout[1:] + [(size, None)]):
        assert first <= last
        assert nxt[0] == last + 1
        widths.append(last - first + 1)
    assert max(widths) - min(widths) <= 1


# ---------------------------------------------------------------------------
# Correctness.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("p,n", [(1, 7), (2, 30), (5, 100), (8, 256), (12, 360), (16, 320)])
def test_multilevel_sorts_globally(p, n):
    parts, outputs, _ = _run(p, n)
    assert is_globally_sorted(outputs)
    assert is_permutation_of_input(parts, outputs)


@pytest.mark.parametrize("branching", [2, 3, 4, 8])
def test_multilevel_branching_factors(branching):
    parts, outputs, stats = _run(13, 260, config=MultilevelConfig(branching=branching))
    assert is_globally_sorted(outputs)
    assert is_permutation_of_input(parts, outputs)
    # With k-way branching the recursion depth is about log_k p.
    expected_levels = int(np.ceil(np.log(13) / np.log(branching)))
    assert all(abs(s.levels - expected_levels) <= 1 for s in stats)


@pytest.mark.parametrize("workload", ["uniform", "duplicates", "sorted", "reverse",
                                      "all_equal", "zipf"])
def test_multilevel_workloads(workload):
    parts, outputs, _ = _run(9, 270, workload=workload)
    assert is_globally_sorted(outputs)
    assert is_permutation_of_input(parts, outputs)


def test_multilevel_handles_empty_input():
    parts, outputs, _ = _run(6, 0)
    assert all(np.asarray(out).size == 0 for out in outputs)


def test_multilevel_no_balance_guarantee_but_sorted_on_skew():
    """Section IV: bucket-based algorithms offer no balance guarantee."""
    parts, outputs, _ = _run(8, 512, workload="zipf", seed=11)
    assert is_globally_sorted(outputs)
    assert imbalance_factor(outputs) >= 1.0


def test_multilevel_message_counts_per_level():
    p = 16
    config = MultilevelConfig(branching=4)
    _, _, stats = _run(p, 320, config=config)
    for s in stats:
        # One message per target group per level.
        assert s.messages_sent <= 4 * s.levels
        # Round-robin fan-in: about (group size this level / next width) per level.
        assert s.messages_received <= 4 * s.levels + s.levels


def test_multilevel_config_validation():
    with pytest.raises(ValueError):
        MultilevelConfig(branching=1)
    with pytest.raises(ValueError):
        MultilevelConfig(oversampling=0)


def test_multilevel_single_process_is_a_local_sort():
    parts, outputs, stats = _run(1, 50)
    assert np.array_equal(outputs[0], np.sort(parts[0]))
    assert stats[0].levels == 0
    assert stats[0].messages_sent == 0


@given(p=st.integers(min_value=1, max_value=12),
       n_per=st.integers(min_value=0, max_value=40),
       branching=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_multilevel_property_sorted_and_permutation(p, n_per, branching, seed):
    parts, outputs, _ = _run(p, p * n_per, seed=seed,
                             config=MultilevelConfig(branching=branching, seed=seed))
    assert is_globally_sorted(outputs)
    assert is_permutation_of_input(parts, outputs)
