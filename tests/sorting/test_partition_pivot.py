"""Tests of local partitioning (with tie-breaking) and pivot selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sorting.partition import Pivot, partition_counts, partition_mask, split_by_mask
from repro.sorting.pivot import (
    PivotConfig,
    draw_local_samples,
    median_of_samples,
    sample_count,
)


# ---------------------------------------------------------------------------
# Partitioning.
# ---------------------------------------------------------------------------

def test_partition_mask_simple():
    values = np.array([5.0, 1.0, 3.0, 9.0])
    slots = np.arange(4)
    mask = partition_mask(values, slots, Pivot(4.0, 100))
    np.testing.assert_array_equal(mask, [False, True, True, False])


def test_partition_mask_tie_breaking_by_slot():
    values = np.array([2.0, 2.0, 2.0])
    slots = np.array([10, 20, 30])
    pivot = Pivot(2.0, 20)          # the element at slot 20 itself
    mask = partition_mask(values, slots, pivot)
    np.testing.assert_array_equal(mask, [True, False, False])


def test_partition_mask_without_tie_breaking():
    values = np.array([2.0, 2.0, 1.0])
    slots = np.array([0, 1, 2])
    mask = partition_mask(values, slots, Pivot(2.0, 1), tie_breaking=False)
    np.testing.assert_array_equal(mask, [False, False, True])


def test_partition_counts_and_split():
    values = np.array([4.0, 8.0, 1.0, 2.0, 9.0])
    slots = np.arange(5)
    pivot = Pivot(4.0, 0)
    small, large = partition_counts(values, slots, pivot)
    assert (small, large) == (2, 3)
    mask = partition_mask(values, slots, pivot)
    left, right = split_by_mask(values, mask)
    np.testing.assert_array_equal(left, [1.0, 2.0])
    np.testing.assert_array_equal(right, [4.0, 8.0, 9.0])


def test_partition_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        partition_mask(np.zeros(3), np.zeros(2), Pivot(0.0, 0))


@given(hnp.arrays(np.float64, st.integers(1, 200),
                  elements=st.floats(-1e6, 1e6, allow_nan=False)),
       st.data())
@settings(max_examples=80)
def test_property_tie_breaking_behaves_like_unique_keys(values, data):
    """With (value, slot) comparison, partitioning splits the elements exactly
    as if all keys were unique: the number of 'small' elements equals the rank
    of the pivot pair in the lexicographic order."""
    slots = np.arange(values.size) + data.draw(st.integers(0, 1000))
    pivot_index = data.draw(st.integers(0, values.size - 1))
    pivot = Pivot(float(values[pivot_index]), int(slots[pivot_index]))
    mask = partition_mask(values, slots, pivot)
    order = np.lexsort((slots, values))
    position_of_pivot = int(np.where(order == pivot_index)[0][0])
    assert int(mask.sum()) == position_of_pivot
    left, right = split_by_mask(values, mask)
    assert left.size + right.size == values.size


# ---------------------------------------------------------------------------
# Pivot selection.
# ---------------------------------------------------------------------------

def test_sample_count_formula():
    config = PivotConfig(k1=2.0, k2=0.5, k3=5.0)
    assert sample_count(config, group_size=2, elements_per_proc=1) == 5
    assert sample_count(config, group_size=1024, elements_per_proc=1) == 20
    assert sample_count(config, group_size=4, elements_per_proc=100) == 50


def test_sample_count_random_element_strategy():
    config = PivotConfig(strategy="random_element")
    assert sample_count(config, 1024, 1e6) == 1


def test_pivot_config_validation():
    with pytest.raises(ValueError):
        PivotConfig(strategy="magic")


def test_draw_local_samples_bounds():
    rng = np.random.default_rng(0)
    values = np.arange(50, dtype=np.float64)
    slots = np.arange(50) + 1000
    sampled_values, sampled_slots = draw_local_samples(values, slots, 12, rng)
    assert sampled_values.size == sampled_slots.size == 12
    assert np.all(np.isin(sampled_values, values))
    assert np.all(sampled_slots == sampled_values + 1000)


def test_draw_local_samples_empty_input():
    rng = np.random.default_rng(0)
    values, slots = draw_local_samples(np.empty(0), np.empty(0, dtype=np.int64), 5, rng)
    assert values.size == 0 and slots.size == 0


def test_median_of_samples_returns_an_actual_element():
    chunks = [
        (np.array([5.0, 1.0]), np.array([0, 1])),
        (np.array([3.0]), np.array([2])),
        (np.empty(0), np.empty(0, dtype=np.int64)),
    ]
    pivot = median_of_samples(chunks)
    assert pivot.value == 3.0
    assert pivot.slot == 2


def test_median_of_samples_breaks_ties_consistently():
    chunks = [(np.array([7.0, 7.0, 7.0]), np.array([30, 10, 20]))]
    pivot = median_of_samples(chunks)
    assert pivot.value == 7.0
    assert pivot.slot == 20          # the middle element in (value, slot) order


def test_median_of_samples_rejects_empty():
    with pytest.raises(ValueError):
        median_of_samples([(np.empty(0), np.empty(0))])


@given(st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=99))
@settings(max_examples=60)
def test_property_median_is_near_the_middle(values):
    array = np.asarray(values)
    slots = np.arange(array.size)
    pivot = median_of_samples([(array, slots)])
    below = int(np.sum(array < pivot.value))
    above = int(np.sum(array > pivot.value))
    assert below <= array.size // 2
    assert above <= array.size // 2
