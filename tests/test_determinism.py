"""Reproducibility: identical configurations give bit-identical simulations."""

import numpy as np

from repro.bench.workloads import generate
from repro.mpi import init_mpi
from repro.rbc import create_rbc_comm
from repro.simulator import Cluster
from repro.sorting import JQuickConfig, RbcBackend, jquick


def _run_once(seed):
    p, n = 8, 64
    parts = generate("uniform", n, p, seed=seed)

    def program(env, local_data):
        world_mpi = init_mpi(env, vendor="intel")
        world = yield from create_rbc_comm(world_mpi)
        output, stats = yield from jquick(env, RbcBackend(world), local_data,
                                          JQuickConfig(seed=seed))
        return output, stats.distributed_steps

    cluster = Cluster(p)
    result = cluster.run(
        program, rank_kwargs=[dict(local_data=parts[r]) for r in range(p)])
    outputs = [r[0] for r in result.results]
    steps = [r[1] for r in result.results]
    return outputs, steps, result.total_time, result.stats.messages_sent


def test_identical_runs_are_bit_identical():
    a = _run_once(seed=123)
    b = _run_once(seed=123)
    for x, y in zip(a[0], b[0]):
        np.testing.assert_array_equal(x, y)
    assert a[1] == b[1]
    assert a[2] == b[2]
    assert a[3] == b[3]


def test_different_seeds_change_the_execution_but_not_the_result():
    a = _run_once(seed=1)
    b = _run_once(seed=2)
    # Different inputs => different outputs, but both simulations complete and
    # report sensible statistics.
    assert a[2] > 0 and b[2] > 0
    assert a[3] > 0 and b[3] > 0


def test_collective_microbenchmark_is_deterministic():
    from repro.bench.harness import collective_program, run_rank_durations

    first, _ = run_rank_durations(16, collective_program, operation="scan",
                                  impl="rbc", vendor="generic", words=32)
    second, _ = run_rank_durations(16, collective_program, operation="scan",
                                   impl="rbc", vendor="generic", words=32)
    assert first == second
