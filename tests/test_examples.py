"""Every script in ``examples/`` must run end to end at a tiny size.

``TINY`` registers, per example, the reduced command-line arguments and the
output lines proving the script did its job.  The completeness test fails
whenever a script exists in ``examples/`` without a registration (or a
registration outlives its script), so new examples cannot ship untested.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

#: script name -> (tiny argv, substrings its stdout must contain).
TINY = {
    "quickstart.py": ((8,), ["both halves received their root's value"]),
    "jquick_sorting.py": ((16, 8), ["result verified", "speedup of RBC over"]),
    "overlapping_communicators.py": ((64,), ["cascade penalty"]),
    "range_broadcast.py": ((64, 16), ["Intel/RBC"]),
    "compare_sorters.py": ((16, 16, "uniform"),
                           ["jquick", "hypercube", "samplesort", "multilevel"]),
    "quickhull_points.py": ((8, 64, "disc"),
                            ["matches sequential hull: yes",
                             "RBC communicator splits"]),
    "large_collectives.py": ((8,), ["auto picks", "scatter_allgather"]),
    "sweep_machines.py": ((16, 2),
                          ["sweep complete: second run served entirely "
                           "from the result cache"]),
}


def _run_example(name, *args):
    script = os.path.join(EXAMPLES_DIR, name)
    completed = subprocess.run(
        [sys.executable, script, *map(str, args)],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, (
        f"{name} failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}")
    return completed.stdout


def test_every_example_script_is_registered():
    scripts = {name for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert scripts == set(TINY), (
        "examples/ and the TINY registry disagree — register a tiny "
        f"configuration for: {sorted(scripts ^ set(TINY))}")


@pytest.mark.parametrize("name", sorted(TINY))
def test_example_runs_end_to_end(name):
    args, expected = TINY[name]
    output = _run_example(name, *args)
    for substring in expected:
        assert substring in output, (
            f"{name} output is missing {substring!r}\nstdout:\n{output}")
