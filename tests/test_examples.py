"""Every example script must run end to end (at a reduced size)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run_example(name, *args):
    script = os.path.join(EXAMPLES_DIR, name)
    completed = subprocess.run(
        [sys.executable, script, *map(str, args)],
        capture_output=True, text=True, timeout=300,
    )
    assert completed.returncode == 0, (
        f"{name} failed\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}")
    return completed.stdout


def test_quickstart_example():
    output = _run_example("quickstart.py", 8)
    assert "both halves received their root's value" in output


def test_jquick_sorting_example():
    output = _run_example("jquick_sorting.py", 16, 8)
    assert "result verified" in output
    assert "speedup of RBC over" in output


def test_overlapping_communicators_example():
    output = _run_example("overlapping_communicators.py", 64)
    assert "cascade penalty" in output


def test_range_broadcast_example():
    output = _run_example("range_broadcast.py", 64, 16)
    assert "Intel/RBC" in output


def test_compare_sorters_example():
    output = _run_example("compare_sorters.py", 16, 16, "uniform")
    assert "jquick" in output and "hypercube" in output and "samplesort" in output
    assert "multilevel" in output


def test_quickhull_example():
    output = _run_example("quickhull_points.py", 8, 64, "disc")
    assert "matches sequential hull: yes" in output
    assert "RBC communicator splits" in output


def test_large_collectives_example():
    output = _run_example("large_collectives.py", 8)
    assert "auto picks" in output
    assert "scatter_allgather" in output
