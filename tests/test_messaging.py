"""Tests of the low-level messaging layer (Status and request objects)."""

import numpy as np
import pytest

from repro.messaging import CompletedRequest, RecvRequest, SendRequest, Status
from repro.messaging import test_all as msg_test_all
from repro.messaging import test_any as msg_test_any
from repro.messaging import wait_all, wait_any
from repro.simulator import Cluster


def test_status_accessors():
    status = Status(source=3, tag=9, count=17)
    assert status.get_source() == 3
    assert status.get_tag() == 9
    assert status.get_count() == 17
    assert not status.cancelled


def test_completed_request_reports_value_and_status():
    class _Env:
        pass

    status = Status(source=1, tag=2, count=3)
    request = CompletedRequest(_Env(), value="payload", status=status)
    assert request.test()
    assert request.done
    assert request.result() == "payload"
    assert request.get_status() is status


def test_send_request_completes_when_buffer_is_free():
    def program(env):
        handle = env.transport.post_send(0, 1, tag=0, context="c",
                                         payload=np.zeros(100))
        request = SendRequest(env, handle)
        assert not request.test()
        yield from request.wait()
        return env.now

    result = Cluster(2).run(program, rank_kwargs=[{}, {}])
    # Rank 1 never sends; its program still runs the same code, so restrict to rank 0.
    assert result.results[0] > 0


def test_recv_request_matches_and_translates_source():
    def program(env):
        if env.rank == 0:
            env.transport.post_send(0, 1, tag=5, context="ctx", payload="hello")
            yield from env.sleep(50.0)
            return None
        request = RecvRequest(env, env.transport, context="ctx",
                              source_world=0, tag=5,
                              translate_source=lambda world: world + 100)
        assert not request.test()
        value = yield from request.wait()
        status = request.get_status()
        return value, status.source, status.count

    result = Cluster(2).run(program)
    assert result.results[1] == ("hello", 100, 1)


def test_recv_request_with_source_filter():
    from repro.simulator import ANY_SOURCE

    def program(env):
        if env.rank in (1, 2):
            # Rank 1 is filtered out, rank 2 is accepted.
            yield from env.sleep(5.0 if env.rank == 1 else 10.0)
            env.transport.post_send(env.rank, 0, tag=1, context="ctx",
                                    payload=f"from-{env.rank}")
            return None
        request = RecvRequest(env, env.transport, context="ctx",
                              source_world=ANY_SOURCE, tag=1,
                              source_filter=lambda world: world == 2)
        value = yield from request.wait()
        # The unfiltered message from rank 1 is still pending afterwards.
        leftover = env.transport.find_match(0, 1, 1, "ctx")
        return value, leftover is not None

    result = Cluster(3).run(program)
    assert result.results[0] == ("from-2", True)


def test_recv_request_take_is_multi_shot():
    """``take()`` consumes the match and re-arms the request for the next one."""

    def program(env):
        if env.rank == 0:
            for index in range(3):
                env.transport.post_send(0, 1, tag=9, context="ctx",
                                        payload=f"msg-{index}")
            yield from env.sleep(50.0)
            return None
        request = RecvRequest(env, env.transport, context="ctx",
                              source_world=0, tag=9)
        received = []
        while len(received) < 3:
            yield from env.wait_until(request.test)
            received.append(request.take())
            # After take() the request is incomplete again until the next
            # message is matched.
            assert request.result() is None
        return received

    result = Cluster(2).run(program)
    assert result.results[1] == ["msg-0", "msg-1", "msg-2"]


def test_take_drain_reports_per_message_status_with_wildcards():
    """Multi-shot drain with a wildcard source (and tag): every drained
    message's Status must carry that message's actual (src, tag, count) —
    translated to the communicator's rank space — not the match key of the
    request or a stale status of a previously drained message."""
    from repro.simulator import ANY_SOURCE, ANY_TAG

    def program(env):
        if env.rank in (1, 2, 3):
            # Staggered sends so the arrival order (and hence the drain
            # order) is deterministic: rank 3 first, then 1, then 2.
            delay = {3: 1.0, 1: 10.0, 2: 20.0}[env.rank]
            yield from env.sleep(delay)
            env.transport.post_send(env.rank, 0, tag=env.rank * 7,
                                    context="ctx",
                                    payload=np.arange(env.rank, dtype=float))
            return None
        request = RecvRequest(env, env.transport, context="ctx",
                              source_world=ANY_SOURCE, tag=ANY_TAG,
                              source_filter=lambda world: world != 0,
                              translate_source=lambda world: world + 100)
        drained = []
        while len(drained) < 3:
            yield from env.wait_until(request.test)
            status = request.get_status()
            payload = request.take()
            drained.append((status.source, status.tag, status.count,
                            payload.size))
            # take() re-arms the request: no stale status may leak into the
            # next drained message.
            assert request.get_status() is None
            assert request.result() is None
        return drained

    result = Cluster(4).run(program)
    assert result.results[0] == [
        (103, 21, 3, 3),
        (101, 7, 1, 1),
        (102, 14, 2, 2),
    ]


def test_take_drain_status_not_cached_across_rearm():
    """A Status obtained (and cached) before ``take()`` must not be returned
    for the *next* drained message."""
    from repro.simulator import ANY_SOURCE

    def program(env):
        if env.rank in (1, 2):
            yield from env.sleep(5.0 * env.rank)
            env.transport.post_send(env.rank, 0, tag=4, context="ctx",
                                    payload=f"from-{env.rank}")
            return None
        request = RecvRequest(env, env.transport, context="ctx",
                              source_world=ANY_SOURCE, tag=4)
        yield from env.wait_until(request.test)
        first = request.get_status()
        assert first is request.get_status()  # cached while matched
        assert request.take() == "from-1"
        yield from env.wait_until(request.test)
        second = request.get_status()
        assert request.take() == "from-2"
        return first.source, second.source

    result = Cluster(3).run(program)
    assert result.results[0] == (1, 2)


def test_request_set_helpers():
    class _Manual:
        def __init__(self):
            self.completed = False

        def test(self):
            return self.completed

        def result(self):
            return "done"

    a, b = _Manual(), _Manual()
    assert not msg_test_all([a, b])
    ok, index = msg_test_any([a, b])
    assert not ok and index is None
    a.completed = True
    assert not msg_test_all([a, b])
    ok, index = msg_test_any([a, b])
    assert ok and index == 0
    b.completed = True
    assert msg_test_all([a, b])


def test_wait_all_and_wait_any_generators():
    def program(env):
        if env.rank == 0:
            requests = [
                RecvRequest(env, env.transport, context="x", source_world=1, tag=0),
                RecvRequest(env, env.transport, context="x", source_world=2, tag=0),
            ]
            first = yield from wait_any(env, requests)
            values = yield from wait_all(env, requests)
            return first, sorted(values)
        yield from env.sleep(3.0 * env.rank)
        env.transport.post_send(env.rank, 0, tag=0, context="x",
                                payload=env.rank * 10)
        return None

    result = Cluster(3).run(program)
    first, values = result.results[0]
    assert first == 0            # rank 1 (request index 0) arrives first
    assert values == [10, 20]
